// The float32 dense type of the reduced-precision inference tier.
//
// F32 mirrors the subset of Tensor the no-grad serving path touches:
// row-major rank-2 matrices, views, conversions to and from the
// float64 substrate, and the shape plumbing PoolF32 needs. It exists
// for serving only — training stays float64 end to end, and a lowered
// model (see internal/nn's precision-lowering pass) is always derived
// from float64 weights, never trained in f32.
//
// Contract: within the f32 tier the kernels keep the same
// serial/sharded bitwise-equality guarantee as the float64 kernels
// (matmul_f32.go). Across tiers correctness is *calibrated*, not
// bitwise: the q-error budgets live in internal/calib and DESIGN.md §9.
package tensor

import (
	"fmt"
	"math"
)

// F32 is a dense row-major float32 matrix. The zero value is not
// usable; construct with NewF32, F32FromTensor, or PoolF32.
type F32 struct {
	// Data holds the elements in row-major order.
	Data []float32
	// Shape holds the extent of each dimension.
	Shape []int
}

// NewF32 creates a zero-initialized f32 tensor with the given shape.
func NewF32(shape ...int) *F32 {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", s))
		}
		n *= s
	}
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &F32{Data: make([]float32, n), Shape: sh}
}

// F32FromTensor truncates a float64 tensor to f32 — the lowering
// primitive. Each element is the nearest float32 (Go's conversion
// rounds to nearest, ties to even).
func F32FromTensor(t *Tensor) *F32 {
	out := NewF32(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// ToTensor widens back to float64 (exact: every float32 is
// representable as a float64).
func (t *F32) ToTensor() *Tensor {
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// Rows returns the first dimension extent (panics if not a matrix).
func (t *F32) Rows() int { t.mustMatrix(); return t.Shape[0] }

// Cols returns the second dimension extent (panics if not a matrix).
func (t *F32) Cols() int { t.mustMatrix(); return t.Shape[1] }

// Size returns the total number of elements.
func (t *F32) Size() int { return len(t.Data) }

func (t *F32) mustMatrix() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: expected matrix, got shape %v", t.Shape))
	}
}

// At returns element (i, j) of a matrix.
func (t *F32) At(i, j int) float32 {
	t.mustMatrix()
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns element (i, j) of a matrix.
func (t *F32) Set(i, j int, v float32) {
	t.mustMatrix()
	t.Data[i*t.Shape[1]+j] = v
}

// Row returns a view (not a copy) of row i of a matrix.
func (t *F32) Row(i int) []float32 {
	t.mustMatrix()
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *F32) Clone() *F32 {
	out := NewF32(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// SameShape reports whether t and o have identical shapes.
func (t *F32) SameShape(o *F32) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// setShape points t at a new shape without allocating when the rank
// matches the previous use of the buffer (PoolF32's shape plumbing,
// same as Tensor.setShape).
func (t *F32) setShape(shape []int) {
	if len(t.Shape) == len(shape) {
		copy(t.Shape, shape)
		return
	}
	t.Shape = append([]int(nil), shape...)
}

// EqualF32 reports whether two f32 tensors have identical shape and
// all elements within eps of each other (eps = 0 asserts bitwise
// equality, the within-tier contract).
func EqualF32(a, b *F32, eps float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i])-float64(b.Data[i])) > eps {
			return false
		}
	}
	return true
}

// Bytes returns the resident size of the tensor's payload in bytes.
func (t *F32) Bytes() int { return 4 * len(t.Data) }
