package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randF32Pair(rng *rand.Rand, m, k, n int) (*F32, *F32) {
	return F32FromTensor(RandNorm(rng, m, k, 1)), F32FromTensor(RandNorm(rng, k, n, 1))
}

// refMatMulF32 is the unblocked (i, l, j) f32 kernel: same per-element
// accumulation order (ascending l) as matMulF32Rows, so the blocked /
// unrolled / sharded kernels must match it bitwise.
func refMatMulF32(a, b *F32) *F32 {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := NewF32(m, n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			av := a.Data[i*k+l]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[l*n+j]
			}
		}
	}
	return out
}

func TestMatMulF32MatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range shapes {
		a, b := randF32Pair(rng, sh.m, sh.k, sh.n)
		if !EqualF32(MatMulF32(a, b), refMatMulF32(a, b), 0) {
			t.Fatalf("[%dx%d @ %dx%d] blocked f32 kernel differs from reference", sh.m, sh.k, sh.k, sh.n)
		}
	}
}

func TestMatMulF32ParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range shapes {
		a, b := randF32Pair(rng, sh.m, sh.k, sh.n)
		SetParallelism(1)
		serial := MatMulF32(a, b)
		SetParallelism(8)
		par := MatMulF32(a, b)
		SetParallelism(0)
		if !EqualF32(serial, par, 0) {
			t.Fatalf("[%dx%d @ %dx%d] parallel f32 result differs from serial", sh.m, sh.k, sh.k, sh.n)
		}
	}
}

func TestMatMulTransBF32ParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range shapes {
		a := F32FromTensor(RandNorm(rng, sh.m, sh.k, 1))
		b := F32FromTensor(RandNorm(rng, sh.n, sh.k, 1))
		SetParallelism(1)
		serial := MatMulTransBF32(a, b)
		SetParallelism(8)
		par := MatMulTransBF32(a, b)
		SetParallelism(0)
		if !EqualF32(serial, par, 0) {
			t.Fatalf("[%dx%d @ %dx%d^T] parallel f32 result differs from serial", sh.m, sh.k, sh.n, sh.k)
		}
	}
}

// TestMatMulF32NearFloat64 pins the cross-tier calibration bound at
// the kernel level: f32 against the float64 reference on the same
// inputs, relative error within ~1e-5 at transformer sizes.
func TestMatMulF32NearFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a64, b64 := randPair(rng, 64, 96, 48)
	out64 := MatMul(a64, b64)
	out32 := MatMulF32(F32FromTensor(a64), F32FromTensor(b64))
	for i := range out64.Data {
		ref := out64.Data[i]
		got := float64(out32.Data[i])
		if math.Abs(got-ref) > 1e-4+1e-4*math.Abs(ref) {
			t.Fatalf("element %d: f32 %v vs f64 %v", i, got, ref)
		}
	}
}

func TestElementwiseF32KernelsMatchFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a64 := RandNorm(rng, 9, 33, 2)
	a32 := F32FromTensor(a64)
	gamma := RandNorm(rng, 1, 33, 1)
	beta := RandNorm(rng, 1, 33, 1)

	check := func(name string, got *F32, want *Tensor, tol float64) {
		t.Helper()
		for i := range want.Data {
			if math.Abs(float64(got.Data[i])-want.Data[i]) > tol {
				t.Fatalf("%s element %d: f32 %v vs f64 %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}

	out32 := NewF32(9, 33)
	out64 := New(9, 33)

	SoftmaxRowsF32Into(a32, out32)
	SoftmaxRowsInto(a64, out64)
	check("softmax", out32, out64, 1e-5)

	LogSoftmaxRowsF32Into(a32, out32)
	LogSoftmaxRowsInto(a64, out64)
	check("logsoftmax", out32, out64, 1e-4)

	LayerNormRowsF32Into(a32, F32FromTensor(gamma), F32FromTensor(beta), 1e-5, out32)
	LayerNormRowsInto(a64, gamma, beta, 1e-5, out64)
	check("layernorm", out32, out64, 1e-4)

	GELUF32Into(a32, out32)
	GELUInto(a64, out64)
	check("gelu", out32, out64, 1e-5)

	ReLUF32Into(a32, out32)
	ReLUInto(a64, out64)
	check("relu", out32, out64, 1e-6)

	TanhF32Into(a32, out32)
	TanhInto(a64, out64)
	check("tanh", out32, out64, 1e-6)

	SigmoidF32Into(a32, out32)
	SigmoidInto(a64, out64)
	check("sigmoid", out32, out64, 1e-6)

	bias := F32FromTensor(gamma)
	AddBiasF32Into(a32, bias, out32)
	AddBiasInto(a64, gamma, out64)
	check("addbias", out32, out64, 1e-6)
}

func TestPoolF32ReusesBuffers(t *testing.T) {
	p := NewPoolF32()
	a := p.Get(4, 8)
	a.Data[0] = 42
	if p.Live() != 1 {
		t.Fatalf("Live = %d, want 1", p.Live())
	}
	p.Reset()
	b := p.Get(8, 4) // same element count, different shape
	if &b.Data[0] != &a.Data[0] {
		t.Fatal("PoolF32 did not reuse the buffer")
	}
	if b.Data[0] != 0 {
		t.Fatal("PoolF32.Get returned unzeroed reused buffer")
	}
	if b.Rows() != 8 || b.Cols() != 4 {
		t.Fatalf("reused buffer shape %v, want [8 4]", b.Shape)
	}
	c := p.GetUninit(4, 8)
	if p.Live() != 2 {
		t.Fatalf("Live = %d, want 2", p.Live())
	}
	_ = c
}

// TestQuantizeRowInt8RoundTripBound is the lowering property test: the
// dequantized row never deviates from the original by more than
// scale/2 per element (tiny slack for the float32 scale rounding).
func TestQuantizeRowInt8RoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := make([]int8, 512)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(512)
		row := make([]float32, n)
		scalePow := math.Pow(10, float64(rng.Intn(9)-4)) // magnitudes 1e-4 .. 1e4
		for i := range row {
			row[i] = float32(rng.NormFloat64() * scalePow)
		}
		scale := float64(QuantizeRowInt8(row, q))
		bound := scale/2 + scale*1e-6
		for i, v := range row {
			deq := float64(q[i]) * scale
			if math.Abs(float64(v)-deq) > bound {
				t.Fatalf("trial %d elem %d: |%v - %v| = %v > scale/2 = %v",
					trial, i, v, deq, math.Abs(float64(v)-deq), scale/2)
			}
		}
	}
	// All-zero row: scale 1, zero codes.
	zero := make([]float32, 16)
	if s := QuantizeRowInt8(zero, q); s != 1 {
		t.Fatalf("zero-row scale = %v, want 1", s)
	}
	for i := 0; i < 16; i++ {
		if q[i] != 0 {
			t.Fatal("zero row quantized to non-zero code")
		}
	}
}

func TestQuantizeLinearRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := Xavier(rng, 48, 32)
	qw := QuantizeLinear(w)
	deq := qw.Dequantize()
	for j := 0; j < 32; j++ {
		scale := float64(qw.Scales[j])
		for l := 0; l < 48; l++ {
			if d := math.Abs(w.At(l, j) - deq.At(l, j)); d > scale/2+scale*1e-6 {
				t.Fatalf("w[%d,%d]: error %v > scale/2 %v", l, j, d, scale/2)
			}
		}
	}
	if got, want := qw.Bytes(), 48*32+4*32; got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}

func TestMatMulInt8ParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range []struct{ m, k, n int }{{3, 5, 7}, {64, 64, 64}, {130, 140, 150}} {
		a := F32FromTensor(RandNorm(rng, sh.m, sh.k, 1))
		w := QuantizeLinear(Xavier(rng, sh.k, sh.n))
		bias := F32FromTensor(RandNorm(rng, 1, sh.n, 1))
		qbuf := make([]int8, sh.m*sh.k)
		serial := NewF32(sh.m, sh.n)
		par := NewF32(sh.m, sh.n)
		SetParallelism(1)
		MatMulInt8Into(a, w, bias, serial, qbuf)
		SetParallelism(8)
		MatMulInt8Into(a, w, bias, par, qbuf)
		SetParallelism(0)
		if !EqualF32(serial, par, 0) {
			t.Fatalf("[%dx%dx%d] parallel int8 result differs from serial", sh.m, sh.k, sh.n)
		}
	}
}

// TestMatMulInt8NearFloat64 bounds the int8 kernel against the exact
// float64 product: with per-row symmetric scales on both operands the
// per-element error is bounded by the two quantization steps times the
// operand magnitudes, loose but deterministic.
func TestMatMulInt8NearFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 16, 64, 32
	a64 := RandNorm(rng, m, k, 1)
	w64 := Xavier(rng, k, n)
	bias64 := RandNorm(rng, 1, n, 0.5)

	ref := MatMul(a64, w64)
	AddBiasInto(ref, bias64, ref)

	out := NewF32(m, n)
	MatMulInt8Into(F32FromTensor(a64), QuantizeLinear(w64), F32FromTensor(bias64), out, make([]int8, m*k))

	for i := range ref.Data {
		if d := math.Abs(float64(out.Data[i]) - ref.Data[i]); d > 0.05 {
			t.Fatalf("element %d: int8 %v vs f64 %v (|d| = %v)", i, out.Data[i], ref.Data[i], d)
		}
	}
}
