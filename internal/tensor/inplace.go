// Destination-taking ("Into") variants of the hot forward kernels.
//
// These exist for the inference fast path: paired with a Pool they let
// a forward pass at steady state allocate nothing. Every Into kernel
// computes its elements with exactly the same expressions, in exactly
// the same order, as the corresponding allocating kernel (or the
// forward half of the corresponding ag op), so outputs are bitwise
// identical — the invariant the no-grad equivalence tests assert with
// eps = 0.
//
// Unless noted otherwise, out must have the correct shape already
// (Pool.Get hands it out that way) and must not alias an input.
package tensor

import (
	"fmt"
	"math"

	"mtmlf/internal/parallel"
)

// AddInto computes out = a + b elementwise. out may alias a or b.
func AddInto(a, b, out *Tensor) {
	if !a.SameShape(b) || !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: AddInto shape mismatch %v + %v -> %v", a.Shape, b.Shape, out.Shape))
	}
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
}

// ScaleInto computes out = s * a. out may alias a.
func ScaleInto(a *Tensor, s float64, out *Tensor) {
	if !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: ScaleInto shape mismatch %v -> %v", a.Shape, out.Shape))
	}
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
}

// AddBiasInto broadcasts the 1xN bias row across every row of a [M,N]
// matrix: out = a + 1·bias. out may alias a. The row-major loop is the
// same as ag.AddBias's forward.
func AddBiasInto(a, bias, out *Tensor) {
	m, n := a.Rows(), a.Cols()
	if bias.Rows() != 1 || bias.Cols() != n || !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: AddBiasInto shape %v + %v -> %v", a.Shape, bias.Shape, out.Shape))
	}
	for i := 0; i < m; i++ {
		row := a.Row(i)
		orow := out.Row(i)
		for j := range row {
			orow[j] = row[j] + bias.Data[j]
		}
	}
}

// SoftmaxRowsInto applies the row-wise softmax of SoftmaxRows into
// out. out may alias a.
func SoftmaxRowsInto(a, out *Tensor) {
	a.mustMatrix()
	if !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: SoftmaxRowsInto shape mismatch %v -> %v", a.Shape, out.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			z += e
		}
		if z == 0 {
			z = 1
		}
		for j := range orow {
			orow[j] /= z
		}
	}
}

// LogSoftmaxRowsInto applies the numerically stable row-wise
// log-softmax (same arithmetic as ag.LogSoftmaxRows's forward). out
// may alias a.
func LogSoftmaxRowsInto(a, out *Tensor) {
	a.mustMatrix()
	if !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: LogSoftmaxRowsInto shape mismatch %v -> %v", a.Shape, out.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		for _, v := range row {
			z += math.Exp(v - mx)
		}
		lz := math.Log(z) + mx
		orow := out.Data[i*n : (i+1)*n]
		for j, v := range row {
			orow[j] = v - lz
		}
	}
}

// LayerNormRowsInto normalizes each row of a to zero mean / unit
// variance and applies the 1xN gain gamma and bias beta, with the
// exact expressions of ag.LayerNormRows's forward. out may alias a.
func LayerNormRowsInto(a, gamma, beta *Tensor, eps float64, out *Tensor) {
	m, n := a.Rows(), a.Cols()
	if gamma.Cols() != n || beta.Cols() != n || !a.SameShape(out) {
		panic("tensor: LayerNormRowsInto shape mismatch")
	}
	for i := 0; i < m; i++ {
		row := a.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		var va float64
		for _, v := range row {
			d := v - mean
			va += d * d
		}
		va /= float64(n)
		is := 1 / math.Sqrt(va+eps)
		orow := out.Row(i)
		for j, v := range row {
			xh := (v - mean) * is
			orow[j] = xh*gamma.Data[j] + beta.Data[j]
		}
	}
}

// ReLUInto computes out = max(0, a) elementwise. out may alias a.
func ReLUInto(a, out *Tensor) {
	if !a.SameShape(out) {
		panic("tensor: ReLUInto shape mismatch")
	}
	for i, x := range a.Data {
		if x > 0 {
			out.Data[i] = x
		} else {
			out.Data[i] = 0
		}
	}
}

// GELUInto computes the tanh-approximation GELU elementwise with the
// same expression as ag.GELU. out may alias a.
func GELUInto(a, out *Tensor) {
	if !a.SameShape(out) {
		panic("tensor: GELUInto shape mismatch")
	}
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, x := range a.Data {
		out.Data[i] = 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
}

// TanhInto computes out = tanh(a) elementwise. out may alias a.
func TanhInto(a, out *Tensor) {
	if !a.SameShape(out) {
		panic("tensor: TanhInto shape mismatch")
	}
	for i, x := range a.Data {
		out.Data[i] = math.Tanh(x)
	}
}

// SigmoidInto computes the logistic function elementwise (same
// expression as ag.Sigmoid). out may alias a.
func SigmoidInto(a, out *Tensor) {
	if !a.SameShape(out) {
		panic("tensor: SigmoidInto shape mismatch")
	}
	for i, x := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-x))
	}
}

// MatMulInto computes out = a @ b. out must be [m,n] and zeroed (the
// kernel accumulates); Pool.Get satisfies both. out must not alias a
// or b.
func MatMulInto(a, b, out *Tensor) {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto %v @ %v -> %v", a.Shape, b.Shape, out.Shape))
	}
	matMulInto(a.Data, b.Data, out.Data, m, k, n)
}

// MatMulTransBInto computes out = a @ b^T for a [m,k], b [n,k]. out
// must be [m,n] and must not alias the inputs (zeroing is not needed:
// this kernel overwrites).
func MatMulTransBInto(a, b, out *Tensor) {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto %v @ %v^T -> %v", a.Shape, b.Shape, out.Shape))
	}
	if m*k*n < serialFlops {
		matMulTransBRows(a.Data, b.Data, out.Data, k, n, 0, m)
		return
	}
	parallel.For(m, rowGrain(k*n), func(i0, i1 int) {
		matMulTransBRows(a.Data, b.Data, out.Data, k, n, i0, i1)
	})
}

// MatMulBatchInto computes outs[i] = as[i] @ bs[i] for every triple on
// the worker pool; the pooled-destination twin of MatMulBatch. Each
// outs[i] must be zeroed (the kernel accumulates).
func MatMulBatchInto(as, bs, outs []*Tensor) {
	if len(as) != len(bs) || len(as) != len(outs) {
		panic(fmt.Sprintf("tensor: MatMulBatchInto length mismatch %d/%d/%d", len(as), len(bs), len(outs)))
	}
	parallel.For(len(as), 1, func(s, e int) {
		for i := s; i < e; i++ {
			MatMulInto(as[i], bs[i], outs[i])
		}
	})
}

// MatMulTransBBatchInto computes outs[i] = as[i] @ bs[i]^T for every
// triple on the worker pool; see MatMulBatchInto.
func MatMulTransBBatchInto(as, bs, outs []*Tensor) {
	if len(as) != len(bs) || len(as) != len(outs) {
		panic(fmt.Sprintf("tensor: MatMulTransBBatchInto length mismatch %d/%d/%d", len(as), len(bs), len(outs)))
	}
	parallel.For(len(as), 1, func(s, e int) {
		for i := s; i < e; i++ {
			MatMulTransBInto(as[i], bs[i], outs[i])
		}
	})
}
