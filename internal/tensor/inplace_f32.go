// Destination-taking f32 kernels for the reduced-precision tier — the
// float32 twins of inplace.go, feeding ag.EvalF32.
//
// Arithmetic note: gc has no float32 transcendentals, so exp/tanh run
// through the float64 math package with a float32 round on the way
// out. Reductions (softmax partition, layer-norm moments) accumulate
// in float32 — the tier is honest about its precision, and the
// cross-tier error is what the calibration harness budgets for.
// Every kernel is elementwise or row-independent and shared verbatim
// between the serial and sharded paths, so the within-tier bitwise
// contract holds trivially here.
//
// Unless noted otherwise, out must have the correct shape already and
// may alias the input (each element is read before it is written).
package tensor

import (
	"fmt"
	"math"
)

// AddF32Into computes out = a + b elementwise. out may alias a or b.
func AddF32Into(a, b, out *F32) {
	if !a.SameShape(b) || !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: AddF32Into shape mismatch %v + %v -> %v", a.Shape, b.Shape, out.Shape))
	}
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
}

// ScaleF32Into computes out = s * a. out may alias a.
func ScaleF32Into(a *F32, s float32, out *F32) {
	if !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: ScaleF32Into shape mismatch %v -> %v", a.Shape, out.Shape))
	}
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
}

// AddBiasF32Into broadcasts the 1xN bias row across every row of a
// [M,N] matrix. out may alias a.
func AddBiasF32Into(a, bias, out *F32) {
	m, n := a.Rows(), a.Cols()
	if bias.Rows() != 1 || bias.Cols() != n || !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: AddBiasF32Into shape %v + %v -> %v", a.Shape, bias.Shape, out.Shape))
	}
	for i := 0; i < m; i++ {
		row := a.Row(i)
		orow := out.Row(i)
		for j := range row {
			orow[j] = row[j] + bias.Data[j]
		}
	}
}

// SoftmaxRowsF32Into applies a numerically stable softmax to each row.
// out may alias a.
func SoftmaxRowsF32Into(a, out *F32) {
	a.mustMatrix()
	if !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: SoftmaxRowsF32Into shape mismatch %v -> %v", a.Shape, out.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		mx := float32(math.Inf(-1))
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			orow[j] = e
			z += e
		}
		if z == 0 {
			z = 1
		}
		for j := range orow {
			orow[j] /= z
		}
	}
}

// LogSoftmaxRowsF32Into applies the numerically stable row-wise
// log-softmax. out may alias a.
func LogSoftmaxRowsF32Into(a, out *F32) {
	a.mustMatrix()
	if !a.SameShape(out) {
		panic(fmt.Sprintf("tensor: LogSoftmaxRowsF32Into shape mismatch %v -> %v", a.Shape, out.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		mx := float32(math.Inf(-1))
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float32
		for _, v := range row {
			z += float32(math.Exp(float64(v - mx)))
		}
		lz := float32(math.Log(float64(z))) + mx
		orow := out.Data[i*n : (i+1)*n]
		for j, v := range row {
			orow[j] = v - lz
		}
	}
}

// LayerNormRowsF32Into normalizes each row to zero mean / unit
// variance and applies the 1xN gain gamma and bias beta. out may
// alias a.
func LayerNormRowsF32Into(a, gamma, beta *F32, eps float64, out *F32) {
	m, n := a.Rows(), a.Cols()
	if gamma.Cols() != n || beta.Cols() != n || !a.SameShape(out) {
		panic("tensor: LayerNormRowsF32Into shape mismatch")
	}
	for i := 0; i < m; i++ {
		row := a.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(n)
		var va float32
		for _, v := range row {
			d := v - mean
			va += d * d
		}
		va /= float32(n)
		is := float32(1 / math.Sqrt(float64(va)+eps))
		orow := out.Row(i)
		for j, v := range row {
			xh := (v - mean) * is
			orow[j] = xh*gamma.Data[j] + beta.Data[j]
		}
	}
}

// ReLUF32Into computes out = max(0, a) elementwise. out may alias a.
func ReLUF32Into(a, out *F32) {
	if !a.SameShape(out) {
		panic("tensor: ReLUF32Into shape mismatch")
	}
	for i, x := range a.Data {
		if x > 0 {
			out.Data[i] = x
		} else {
			out.Data[i] = 0
		}
	}
}

// GELUF32Into computes the tanh-approximation GELU elementwise with
// the same expression as GELUInto. out may alias a.
func GELUF32Into(a, out *F32) {
	if !a.SameShape(out) {
		panic("tensor: GELUF32Into shape mismatch")
	}
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, x := range a.Data {
		x64 := float64(x)
		out.Data[i] = float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
	}
}

// TanhF32Into computes out = tanh(a) elementwise. out may alias a.
func TanhF32Into(a, out *F32) {
	if !a.SameShape(out) {
		panic("tensor: TanhF32Into shape mismatch")
	}
	for i, x := range a.Data {
		out.Data[i] = float32(math.Tanh(float64(x)))
	}
}

// SigmoidF32Into computes the logistic function elementwise. out may
// alias a.
func SigmoidF32Into(a, out *F32) {
	if !a.SameShape(out) {
		panic("tensor: SigmoidF32Into shape mismatch")
	}
	for i, x := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(x))))
	}
}
