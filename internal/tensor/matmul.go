// Matrix-multiply kernels: the hot path of the whole substrate.
//
// # DESIGN — parallelism model
//
// All three kernels (MatMul, MatMulTransA, MatMulTransB) share one
// structure: a cache-blocked inner kernel that computes a contiguous
// range of OUTPUT rows, and a dispatcher that either calls it once
// (serial fast path, for small problems) or shards the output rows
// across the package worker pool (internal/parallel). Output rows are
// disjoint between shards, so no synchronization is needed beyond the
// final join, and — because each output element is always accumulated
// in the same k-order no matter how the rows are sharded — the result
// is BITWISE IDENTICAL at every parallelism level, including the
// serial path. Tests assert this exactly (eps = 0).
//
// SetParallelism(n) bounds the worker count (default GOMAXPROCS); it
// is the single knob the -workers flags of every binary wire to.
// Problems below serialFlops multiply-adds never leave the calling
// goroutine: at transformer-layer sizes a goroutine handoff costs more
// than the arithmetic it saves.
//
// Cache blocking: the B operand is walked in kcBlock-row slabs
// (MatMul) or jcBlock-row slabs (MatMulTransB) sized to stay resident
// in L2 while every output row in the shard streams over them.
// Blocking only reorders which (i, l) pairs are visited when — each
// out[i,j] still accumulates its k products in ascending l order, the
// invariant the bitwise-equality guarantee rests on.
package tensor

import (
	"fmt"

	"mtmlf/internal/parallel"
)

// SetParallelism sets the worker-pool size used by large tensor
// kernels (and everything else built on internal/parallel) and
// returns the previous value. n <= 0 resets to runtime.GOMAXPROCS.
func SetParallelism(n int) int { return parallel.SetWorkers(n) }

// Parallelism returns the current worker-pool size.
func Parallelism() int { return parallel.Workers() }

const (
	// serialFlops is the multiply-add count below which a matmul runs
	// entirely on the calling goroutine.
	serialFlops = 1 << 17
	// kcBlock is the k-dimension block: a kcBlock x n slab of B is
	// reused across every output row of a shard before moving on.
	kcBlock = 128
	// jcBlock bounds the B-row slab of MatMulTransB (jcBlock rows of
	// length k) so repeated dot products hit cache.
	jcBlock = 64
)

// rowGrain returns the minimum output rows per shard so that each
// spawned chunk carries at least ~serialFlops of work.
func rowGrain(flopsPerRow int) int {
	if flopsPerRow <= 0 {
		return 1
	}
	g := serialFlops / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul returns a @ b for matrices a [m,k] and b [k,n].
func MatMul(a, b *Tensor) *Tensor {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v @ %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	matMulInto(a.Data, b.Data, out.Data, m, k, n)
	return out
}

func matMulInto(a, b, out []float64, m, k, n int) {
	if m*k*n < serialFlops {
		matMulRows(a, b, out, k, n, 0, m)
		return
	}
	parallel.For(m, rowGrain(k*n), func(i0, i1 int) {
		matMulRows(a, b, out, k, n, i0, i1)
	})
}

// matMulRows computes output rows [i0, i1) of a @ b. The k loop is
// blocked so the active B slab stays cache-resident; within a block
// the (i, l, j) order matches the classic kernel, streaming both B
// and out rows sequentially. Zero entries of A are skipped — plan
// feature rows are sparse one-hots, so this pays off well beyond its
// cost on dense inputs.
func matMulRows(a, b, out []float64, k, n, i0, i1 int) {
	for l0 := 0; l0 < k; l0 += kcBlock {
		l1 := l0 + kcBlock
		if l1 > k {
			l1 = k
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for l := l0; l < l1; l++ {
				av := arow[l]
				if av == 0 {
					continue
				}
				brow := b[l*n : (l+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// MatMulTransB returns a @ b^T for a [m,k], b [n,k]. It avoids
// materializing the transpose, which the attention kernels rely on.
func MatMulTransB(a, b *Tensor) *Tensor {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dim mismatch %v @ %v^T", a.Shape, b.Shape))
	}
	out := New(m, n)
	if m*k*n < serialFlops {
		matMulTransBRows(a.Data, b.Data, out.Data, k, n, 0, m)
		return out
	}
	parallel.For(m, rowGrain(k*n), func(i0, i1 int) {
		matMulTransBRows(a.Data, b.Data, out.Data, k, n, i0, i1)
	})
	return out
}

// matMulTransBRows computes output rows [i0, i1) of a @ b^T as dot
// products, visiting B in jcBlock-row slabs so each slab is reused
// across all rows of the shard while hot.
func matMulTransBRows(a, b, out []float64, k, n, i0, i1 int) {
	for j0 := 0; j0 < n; j0 += jcBlock {
		j1 := j0 + jcBlock
		if j1 > n {
			j1 = n
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for j := j0; j < j1; j++ {
				brow := b[j*k : (j+1)*k]
				var s float64
				for l, av := range arow {
					s += av * brow[l]
				}
				orow[j] = s
			}
		}
	}
}

// MatMulTransA returns a^T @ b for a [k,m], b [k,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	a.mustMatrix()
	b.mustMatrix()
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dim mismatch %v^T @ %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	if m*k*n < serialFlops {
		matMulTransARows(a.Data, b.Data, out.Data, k, m, n, 0, m)
		return out
	}
	parallel.For(m, rowGrain(k*n), func(i0, i1 int) {
		matMulTransARows(a.Data, b.Data, out.Data, k, m, n, i0, i1)
	})
	return out
}

// matMulTransARows computes output rows [i0, i1) of a^T @ b, i.e. the
// rows indexed by columns i of a. The l (row of a and b) loop stays
// outermost so both inputs stream sequentially; out rows for the shard
// are revisited per l, which stays cheap because shards are sized by
// rowGrain. Gradient matrices are often sparse, hence the zero skip.
func matMulTransARows(a, b, out []float64, k, m, n, i0, i1 int) {
	for l := 0; l < k; l++ {
		arow := a[l*m : (l+1)*m]
		brow := b[l*n : (l+1)*n]
		for i := i0; i < i1; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulBatch computes as[i] @ bs[i] for every pair, fanning the batch
// out over the worker pool. It exists so callers with many small
// independent products — per-head attention, per-token projections —
// can use the pool even when each single product is below the
// parallel threshold. Results are identical to calling MatMul in a
// loop.
func MatMulBatch(as, bs []*Tensor) []*Tensor {
	if len(as) != len(bs) {
		panic(fmt.Sprintf("tensor: MatMulBatch length mismatch %d vs %d", len(as), len(bs)))
	}
	out := make([]*Tensor, len(as))
	parallel.For(len(as), 1, func(s, e int) {
		for i := s; i < e; i++ {
			out[i] = MatMul(as[i], bs[i])
		}
	})
	return out
}

// MatMulTransBBatch computes as[i] @ bs[i]^T for every pair on the
// worker pool; see MatMulBatch.
func MatMulTransBBatch(as, bs []*Tensor) []*Tensor {
	if len(as) != len(bs) {
		panic(fmt.Sprintf("tensor: MatMulTransBBatch length mismatch %d vs %d", len(as), len(bs)))
	}
	out := make([]*Tensor, len(as))
	parallel.For(len(as), 1, func(s, e int) {
		for i := s; i < e; i++ {
			out[i] = MatMulTransB(as[i], bs[i])
		}
	})
	return out
}
