// Float32 matrix-multiply kernels for the reduced-precision inference
// tier.
//
// These follow the float64 kernels' structure exactly — a cache-blocked
// inner kernel over a contiguous range of output rows, and a dispatcher
// that runs it serially below serialFlops or shards output rows across
// the worker pool — so they inherit the same bitwise guarantee WITHIN
// the f32 tier: every output element is accumulated in the same order
// no matter how rows are sharded, and tests assert serial == sharded
// with eps = 0.
//
// Two deliberate differences from the float64 kernels, both because
// this tier serves dense post-projection activations rather than
// sparse one-hot feature rows:
//
//   - no zero-skip: the `if av == 0` branch pays off on sparse A but
//     is pure overhead (and a per-element unpredictable branch) on the
//     dense matrices this tier exists for;
//   - restructured inner loops: bounds-check-free slice windows
//     (full-slice expressions re-sliced to a constant 4 length) and
//     4x-unrolled accumulation, which is what "vectorization-friendly"
//     means under gc — the compiler does not auto-SIMD, so the win is
//     eliminated bounds checks plus four independent dependency chains
//     keeping the FMA ports busy.
//
// The j-unrolled axpy updates each output element exactly once per l,
// so the per-element k-accumulation order is still ascending l — the
// invariant the bitwise within-tier contract rests on. The TransB dot
// product uses four partial sums reduced in a fixed tree; that order
// is part of the f32 kernel definition and identical on every path.
package tensor

import (
	"fmt"

	"mtmlf/internal/parallel"
)

// MatMulF32 returns a @ b for f32 matrices a [m,k] and b [k,n].
func MatMulF32(a, b *F32) *F32 {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulF32 inner dim mismatch %v @ %v", a.Shape, b.Shape))
	}
	out := NewF32(m, n)
	matMulF32Into(a.Data, b.Data, out.Data, m, k, n)
	return out
}

// MatMulF32Into computes out = a @ b. out must be [m,n] and zeroed
// (the kernel accumulates); PoolF32.Get satisfies both. out must not
// alias a or b.
func MatMulF32Into(a, b, out *F32) {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulF32Into %v @ %v -> %v", a.Shape, b.Shape, out.Shape))
	}
	matMulF32Into(a.Data, b.Data, out.Data, m, k, n)
}

func matMulF32Into(a, b, out []float32, m, k, n int) {
	if m*k*n < serialFlops {
		matMulF32Rows(a, b, out, k, n, 0, m)
		return
	}
	parallel.For(m, rowGrain(k*n), func(i0, i1 int) {
		matMulF32Rows(a, b, out, k, n, i0, i1)
	})
}

// matMulF32Rows computes output rows [i0, i1) of a @ b, k-blocked so
// the active B slab stays cache-resident. The axpy update is unrolled
// 4-deep over l and 4-wide over j: four B rows stream at once, so each
// output element is loaded and stored once per four l's instead of
// once per l (a 4x cut in out-row traffic), over constant-length slice
// windows that make every index provably in-bounds.
//
// The per-element accumulation order is unchanged: each output element
// receives its four contributions as a chained sum in ascending-l
// order, the same sequence the one-l-at-a-time axpy produces — so the
// bitwise within-tier contract is preserved.
func matMulF32Rows(a, b, out []float32, k, n, i0, i1 int) {
	for l0 := 0; l0 < k; l0 += kcBlock {
		l1 := l0 + kcBlock
		if l1 > k {
			l1 = k
		}
		for i := i0; i < i1; i++ {
			orow := out[i*n : i*n+n : i*n+n]
			l := l0
			for ; l+4 <= l1; l += 4 {
				aw := a[i*k+l : i*k+l+4 : i*k+l+4]
				av0, av1, av2, av3 := aw[0], aw[1], aw[2], aw[3]
				b0 := b[l*n : l*n+n : l*n+n]
				b1 := b[(l+1)*n : (l+1)*n+n : (l+1)*n+n]
				b2 := b[(l+2)*n : (l+2)*n+n : (l+2)*n+n]
				b3 := b[(l+3)*n : (l+3)*n+n : (l+3)*n+n]
				j := 0
				for ; j+4 <= n; j += 4 {
					b0w := b0[j : j+4 : j+4]
					b1w := b1[j : j+4 : j+4]
					b2w := b2[j : j+4 : j+4]
					b3w := b3[j : j+4 : j+4]
					ow := orow[j : j+4 : j+4]
					o0 := ow[0] + av0*b0w[0]
					o1 := ow[1] + av0*b0w[1]
					o2 := ow[2] + av0*b0w[2]
					o3 := ow[3] + av0*b0w[3]
					o0 += av1 * b1w[0]
					o1 += av1 * b1w[1]
					o2 += av1 * b1w[2]
					o3 += av1 * b1w[3]
					o0 += av2 * b2w[0]
					o1 += av2 * b2w[1]
					o2 += av2 * b2w[2]
					o3 += av2 * b2w[3]
					o0 += av3 * b3w[0]
					o1 += av3 * b3w[1]
					o2 += av3 * b3w[2]
					o3 += av3 * b3w[3]
					ow[0] = o0
					ow[1] = o1
					ow[2] = o2
					ow[3] = o3
				}
				for ; j < n; j++ {
					s := orow[j] + av0*b0[j]
					s += av1 * b1[j]
					s += av2 * b2[j]
					s += av3 * b3[j]
					orow[j] = s
				}
			}
			for ; l < l1; l++ {
				av := a[i*k+l]
				brow := b[l*n : l*n+n : l*n+n]
				j := 0
				for ; j+4 <= n; j += 4 {
					bw := brow[j : j+4 : j+4]
					ow := orow[j : j+4 : j+4]
					ow[0] += av * bw[0]
					ow[1] += av * bw[1]
					ow[2] += av * bw[2]
					ow[3] += av * bw[3]
				}
				for ; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulTransBF32 returns a @ b^T for a [m,k], b [n,k] without
// materializing the transpose.
func MatMulTransBF32(a, b *F32) *F32 {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransBF32 inner dim mismatch %v @ %v^T", a.Shape, b.Shape))
	}
	out := NewF32(m, n)
	matMulTransBF32Into(a.Data, b.Data, out.Data, m, k, n)
	return out
}

// MatMulTransBF32Into computes out = a @ b^T for a [m,k], b [n,k].
// out must be [m,n] and must not alias the inputs (no zeroing needed:
// the kernel overwrites).
func MatMulTransBF32Into(a, b, out *F32) {
	a.mustMatrix()
	b.mustMatrix()
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBF32Into %v @ %v^T -> %v", a.Shape, b.Shape, out.Shape))
	}
	matMulTransBF32Into(a.Data, b.Data, out.Data, m, k, n)
}

func matMulTransBF32Into(a, b, out []float32, m, k, n int) {
	if m*k*n < serialFlops {
		matMulTransBF32Rows(a, b, out, k, n, 0, m)
		return
	}
	parallel.For(m, rowGrain(k*n), func(i0, i1 int) {
		matMulTransBF32Rows(a, b, out, k, n, i0, i1)
	})
}

// matMulTransBF32Rows computes output rows [i0, i1) of a @ b^T as dot
// products over jcBlock-row B slabs. Each dot runs four independent
// partial sums over constant-length windows, reduced as
// (s0+s1)+(s2+s3) — a fixed tree, identical on every shard.
func matMulTransBF32Rows(a, b, out []float32, k, n, i0, i1 int) {
	for j0 := 0; j0 < n; j0 += jcBlock {
		j1 := j0 + jcBlock
		if j1 > n {
			j1 = n
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k : i*k+k]
			orow := out[i*n : i*n+n : i*n+n]
			for j := j0; j < j1; j++ {
				brow := b[j*k : j*k+k : j*k+k]
				var s0, s1, s2, s3 float32
				l := 0
				for ; l+4 <= k; l += 4 {
					aw := arow[l : l+4 : l+4]
					bw := brow[l : l+4 : l+4]
					s0 += aw[0] * bw[0]
					s1 += aw[1] * bw[1]
					s2 += aw[2] * bw[2]
					s3 += aw[3] * bw[3]
				}
				s := (s0 + s1) + (s2 + s3)
				for ; l < k; l++ {
					s += arow[l] * brow[l]
				}
				orow[j] = s
			}
		}
	}
}

// MatMulF32BatchInto computes outs[i] = as[i] @ bs[i] for every triple
// on the worker pool. Each outs[i] must be zeroed (the kernel
// accumulates).
func MatMulF32BatchInto(as, bs, outs []*F32) {
	if len(as) != len(bs) || len(as) != len(outs) {
		panic(fmt.Sprintf("tensor: MatMulF32BatchInto length mismatch %d/%d/%d", len(as), len(bs), len(outs)))
	}
	parallel.For(len(as), 1, func(s, e int) {
		for i := s; i < e; i++ {
			MatMulF32Into(as[i], bs[i], outs[i])
		}
	})
}

// MatMulTransBF32BatchInto computes outs[i] = as[i] @ bs[i]^T for
// every triple on the worker pool.
func MatMulTransBF32BatchInto(as, bs, outs []*F32) {
	if len(as) != len(bs) || len(as) != len(outs) {
		panic(fmt.Sprintf("tensor: MatMulTransBF32BatchInto length mismatch %d/%d/%d", len(as), len(bs), len(outs)))
	}
	parallel.For(len(as), 1, func(s, e int) {
		for i := s; i < e; i++ {
			MatMulTransBF32Into(as[i], bs[i], outs[i])
		}
	})
}
