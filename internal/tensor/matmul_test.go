package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// refMatMul is the straightforward (i, l, j) kernel the seed shipped
// with — the reference the blocked/parallel kernels must match
// bitwise (identical per-element accumulation order).
func refMatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			av := a.Data[i*k+l]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[l*n+j]
			}
		}
	}
	return out
}

func refMatMulTransB(a, b *Tensor) *Tensor {
	return refMatMul(a, Transpose(b))
}

func refMatMulTransA(a, b *Tensor) *Tensor {
	return refMatMul(Transpose(a), b)
}

// shapes covers the edge cases: empty, scalar-ish, ragged, prime
// dimensions straddling the block sizes, tall/wide extremes, and
// sizes large enough to cross the parallel threshold.
var shapes = []struct{ m, k, n int }{
	{0, 3, 4}, {3, 0, 4}, {1, 1, 1}, {2, 3, 1}, {1, 7, 5},
	{3, 5, 7}, {13, 17, 11}, {64, 64, 64}, {127, 129, 63},
	{1, 300, 1}, {300, 1, 300}, {200, 70, 3},
	{130, 140, 150}, {256, 64, 128},
}

func randPair(rng *rand.Rand, m, k, n int) (*Tensor, *Tensor) {
	return RandNorm(rng, m, k, 1), RandNorm(rng, k, n, 1)
}

func TestMatMulParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range shapes {
		a, b := randPair(rng, sh.m, sh.k, sh.n)
		SetParallelism(1)
		serial := MatMul(a, b)
		SetParallelism(8)
		par := MatMul(a, b)
		SetParallelism(0)
		if !Equal(serial, par, 0) {
			t.Fatalf("[%dx%d @ %dx%d] parallel result differs from serial", sh.m, sh.k, sh.k, sh.n)
		}
		if !Equal(serial, refMatMul(a, b), 0) {
			t.Fatalf("[%dx%d @ %dx%d] blocked kernel differs from reference", sh.m, sh.k, sh.k, sh.n)
		}
	}
}

func TestMatMulTransBParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range shapes {
		a := RandNorm(rng, sh.m, sh.k, 1)
		b := RandNorm(rng, sh.n, sh.k, 1)
		SetParallelism(1)
		serial := MatMulTransB(a, b)
		SetParallelism(8)
		par := MatMulTransB(a, b)
		SetParallelism(0)
		if !Equal(serial, par, 0) {
			t.Fatalf("[%dx%d @ (%dx%d)^T] parallel result differs from serial", sh.m, sh.k, sh.n, sh.k)
		}
		// Dot-product kernels share the ascending-l accumulation order
		// with the reference, so this too is exact.
		if !Equal(serial, refMatMulTransB(a, b), 0) {
			t.Fatalf("[%dx%d @ (%dx%d)^T] kernel differs from reference", sh.m, sh.k, sh.n, sh.k)
		}
	}
}

func TestMatMulTransAParallelMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range shapes {
		a := RandNorm(rng, sh.k, sh.m, 1)
		b := RandNorm(rng, sh.k, sh.n, 1)
		SetParallelism(1)
		serial := MatMulTransA(a, b)
		SetParallelism(8)
		par := MatMulTransA(a, b)
		SetParallelism(0)
		if !Equal(serial, par, 0) {
			t.Fatalf("[(%dx%d)^T @ %dx%d] parallel result differs from serial", sh.k, sh.m, sh.k, sh.n)
		}
		if !Equal(serial, refMatMulTransA(a, b), 0) {
			t.Fatalf("[(%dx%d)^T @ %dx%d] kernel differs from reference", sh.k, sh.m, sh.k, sh.n)
		}
	}
}

func TestMatMulBatchMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	defer SetParallelism(SetParallelism(4))
	var as, bs []*Tensor
	for i := 0; i < 9; i++ {
		a, b := randPair(rng, 5+i, 8, 7)
		as = append(as, a)
		bs = append(bs, b)
	}
	got := MatMulBatch(as, bs)
	for i := range as {
		if !Equal(got[i], MatMul(as[i], bs[i]), 0) {
			t.Fatalf("batch element %d differs", i)
		}
	}
	bts := make([]*Tensor, len(bs))
	for i, b := range bs {
		bts[i] = Transpose(b)
	}
	gotTB := MatMulTransBBatch(as, bts)
	for i := range as {
		if !Equal(gotTB[i], MatMulTransB(as[i], bts[i]), 0) {
			t.Fatalf("transB batch element %d differs", i)
		}
	}
}

// TestMatMulConcurrentCallers exercises the kernels from many
// goroutines at once (the data-parallel training pattern) so the race
// detector can see any shared-state mistakes in the pool.
func TestMatMulConcurrentCallers(t *testing.T) {
	defer SetParallelism(SetParallelism(4))
	rng := rand.New(rand.NewSource(5))
	a, b := randPair(rng, 130, 140, 150)
	want := MatMul(a, b)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if !Equal(MatMul(a, b), want, 0) {
					t.Error("concurrent MatMul result differs")
					return
				}
			}
		}()
	}
	wg.Wait()
}
