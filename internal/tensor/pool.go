// Buffer pooling for the inference fast path.
//
// A Pool is an arena of reusable tensors indexed by element count:
// Get hands out a zeroed tensor of the requested shape, and Reset
// makes every tensor handed out since the last Reset reusable again
// without freeing it. At steady state (after the first generation has
// populated each size class) a forward pass served from a Pool
// allocates nothing.
//
// Ownership rules (see README "Inference path"):
//
//   - A pooled tensor is valid from its Get until the next Reset of
//     the pool that produced it. Nothing that must outlive the Reset
//     may point into a pooled tensor — copy it out (Clone) first.
//   - Pools are NOT safe for concurrent use. Each inference session
//     (one ag.Eval) owns one Pool; concurrent sessions get their own.
//     DESIGN.md "Session ownership" records the full lifetime rules
//     the serving layer builds on.
package tensor

import "sync/atomic"

// Process-wide pool telemetry: every Get increments poolGets, and the
// ones that could not reuse a free buffer also increment poolAllocs.
// The serving layer's /statsz surfaces the reuse rate (1 - allocs/gets)
// as its "is the arena warm" signal. Atomic adds cost ~ns against the
// O(d^2..d^3) kernel work each pooled buffer feeds.
var (
	poolGets   atomic.Uint64
	poolAllocs atomic.Uint64
)

// PoolCounters reports the cumulative pooled-tensor Gets and the
// subset that had to allocate, across every Pool in the process.
func PoolCounters() (gets, allocs uint64) {
	return poolGets.Load(), poolAllocs.Load()
}

// Pool is a size-indexed tensor arena. The zero value is not usable;
// construct with NewPool.
type Pool struct {
	classes map[int]*poolClass
	// live counts Gets since the last Reset (exported via Live for
	// tests and leak diagnostics).
	live int
}

// poolClass is the arena for one element count: bufs[:next] are handed
// out, bufs[next:] are free.
type poolClass struct {
	bufs []*Tensor
	next int
}

// NewPool creates an empty pool.
func NewPool() *Pool {
	return &Pool{classes: map[int]*poolClass{}}
}

// Get returns a zeroed tensor of the given shape, reusing a free
// buffer of the same element count when one exists. The tensor is
// owned by the pool: it becomes invalid at the next Reset.
func (p *Pool) Get(shape ...int) *Tensor {
	t, reused := p.get(shape)
	if reused {
		for i := range t.Data {
			t.Data[i] = 0
		}
	}
	return t
}

// GetUninit is Get without the zeroing pass: the contents of a reused
// buffer are whatever its previous user left there. Only for callers
// that overwrite every element before reading any (all the Into
// kernels except the accumulating matmuls qualify) — it saves one
// full memory walk per op on the hot serving path.
func (p *Pool) GetUninit(shape ...int) *Tensor {
	t, _ := p.get(shape)
	return t
}

// get hands out a buffer and reports whether it was reused (and so
// may hold stale data).
func (p *Pool) get(shape []int) (t *Tensor, reused bool) {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: Pool.Get negative dimension")
		}
		n *= s
	}
	p.live++
	poolGets.Add(1)
	c := p.classes[n]
	if c == nil {
		c = &poolClass{}
		p.classes[n] = c
	}
	if c.next < len(c.bufs) {
		t = c.bufs[c.next]
		c.next++
		t.setShape(shape)
		return t, true
	}
	poolAllocs.Add(1)
	t = New(shape...)
	c.bufs = append(c.bufs, t)
	c.next++
	return t, false
}

// setShape points t at a new shape without allocating when the rank
// matches the previous use of the buffer.
func (t *Tensor) setShape(shape []int) {
	if len(t.Shape) == len(shape) {
		copy(t.Shape, shape)
		return
	}
	t.Shape = append([]int(nil), shape...)
}

// Reset returns every tensor handed out since the last Reset to the
// free state. Previously returned tensors must no longer be used.
func (p *Pool) Reset() {
	for _, c := range p.classes {
		c.next = 0
	}
	p.live = 0
}

// Live reports how many tensors are currently handed out.
func (p *Pool) Live() int { return p.live }
