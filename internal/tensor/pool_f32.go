// PoolF32 is the f32 arena of the reduced-precision inference tier —
// the float32 twin of Pool, with the same ownership rules: a pooled
// tensor is valid from its Get until the next Reset, pools are
// single-session, and nothing that outlives the Reset may point into
// a pooled buffer. It feeds the process-wide poolGets/poolAllocs
// counters, so /statsz's reuse rate covers both tiers.
package tensor

// PoolF32 is a size-indexed f32 tensor arena. The zero value is not
// usable; construct with NewPoolF32.
type PoolF32 struct {
	classes map[int]*poolClassF32
	live    int
}

// poolClassF32 is the arena for one element count: bufs[:next] are
// handed out, bufs[next:] are free.
type poolClassF32 struct {
	bufs []*F32
	next int
}

// NewPoolF32 creates an empty f32 pool.
func NewPoolF32() *PoolF32 {
	return &PoolF32{classes: map[int]*poolClassF32{}}
}

// Get returns a zeroed f32 tensor of the given shape, reusing a free
// buffer of the same element count when one exists. The tensor is
// owned by the pool: it becomes invalid at the next Reset.
func (p *PoolF32) Get(shape ...int) *F32 {
	t, reused := p.get(shape)
	if reused {
		for i := range t.Data {
			t.Data[i] = 0
		}
	}
	return t
}

// GetUninit is Get without the zeroing pass; only for callers that
// overwrite every element before reading any (see Pool.GetUninit).
func (p *PoolF32) GetUninit(shape ...int) *F32 {
	t, _ := p.get(shape)
	return t
}

func (p *PoolF32) get(shape []int) (t *F32, reused bool) {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: PoolF32.Get negative dimension")
		}
		n *= s
	}
	p.live++
	poolGets.Add(1)
	c := p.classes[n]
	if c == nil {
		c = &poolClassF32{}
		p.classes[n] = c
	}
	if c.next < len(c.bufs) {
		t = c.bufs[c.next]
		c.next++
		t.setShape(shape)
		return t, true
	}
	poolAllocs.Add(1)
	t = NewF32(shape...)
	c.bufs = append(c.bufs, t)
	c.next++
	return t, false
}

// Reset returns every tensor handed out since the last Reset to the
// free state. Previously returned tensors must no longer be used.
func (p *PoolF32) Reset() {
	for _, c := range p.classes {
		c.next = 0
	}
	p.live = 0
}

// Live reports how many tensors are currently handed out.
func (p *PoolF32) Live() int { return p.live }
