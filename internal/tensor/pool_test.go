package tensor

import (
	"math/rand"
	"testing"
)

func TestPoolReuseAndZeroing(t *testing.T) {
	p := NewPool()
	a := p.Get(3, 4)
	if a.Rows() != 3 || a.Cols() != 4 {
		t.Fatalf("shape %v", a.Shape)
	}
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	b := p.Get(3, 4) // distinct buffer: a is still live
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("pool handed out a live buffer twice")
	}
	if p.Live() != 2 {
		t.Fatalf("live = %d", p.Live())
	}
	p.Reset()
	c := p.Get(4, 3) // same element count, different shape: reuses a's buffer
	if &c.Data[0] != &a.Data[0] {
		t.Fatal("pool did not reuse the freed buffer")
	}
	if c.Rows() != 4 || c.Cols() != 3 {
		t.Fatalf("reused shape %v", c.Shape)
	}
	for i, v := range c.Data {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %g", i, v)
		}
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool()
	warm := func() {
		for _, sh := range [][2]int{{4, 8}, {8, 8}, {1, 16}} {
			x := p.Get(sh[0], sh[1])
			x.Fill(1)
		}
		p.Reset()
	}
	warm()
	allocs := testing.AllocsPerRun(50, warm)
	if allocs > 0 {
		t.Fatalf("steady-state pool cycle allocates %.1f times", allocs)
	}
}

// TestIntoKernelsMatchAllocating asserts every Into kernel is bitwise
// identical (eps = 0) to its allocating twin on random inputs.
func TestIntoKernelsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Rand(rng, 9, 13, 1)
	b := Rand(rng, 9, 13, 1)
	w := Rand(rng, 13, 5, 1)
	bt := Rand(rng, 4, 13, 1)
	bias := Rand(rng, 1, 13, 1)
	gamma := Rand(rng, 1, 13, 1)
	beta := Rand(rng, 1, 13, 1)

	check := func(name string, want, got *Tensor) {
		t.Helper()
		if !Equal(want, got, 0) {
			t.Fatalf("%s: Into kernel diverges from allocating kernel", name)
		}
	}

	out := New(9, 13)
	AddInto(a, b, out)
	check("AddInto", Add(a, b), out)

	ScaleInto(a, -1.75, out)
	check("ScaleInto", Scale(a, -1.75), out)

	AddBiasInto(a, bias, out)
	want := New(9, 13)
	for i := 0; i < 9; i++ {
		for j := 0; j < 13; j++ {
			want.Set(i, j, a.At(i, j)+bias.Data[j])
		}
	}
	check("AddBiasInto", want, out)

	SoftmaxRowsInto(a, out)
	check("SoftmaxRowsInto", SoftmaxRows(a), out)

	// Aliased destination.
	aCopy := a.Clone()
	SoftmaxRowsInto(aCopy, aCopy)
	check("SoftmaxRowsInto aliased", SoftmaxRows(a), aCopy)

	mm := New(9, 5)
	MatMulInto(a, w, mm)
	check("MatMulInto", MatMul(a, w), mm)

	mtb := New(9, 4)
	MatMulTransBInto(a, bt, mtb)
	check("MatMulTransBInto", MatMulTransB(a, bt), mtb)

	outs := []*Tensor{New(9, 5), New(9, 5)}
	MatMulBatchInto([]*Tensor{a, b}, []*Tensor{w, w}, outs)
	check("MatMulBatchInto[0]", MatMul(a, w), outs[0])
	check("MatMulBatchInto[1]", MatMul(b, w), outs[1])

	touts := []*Tensor{New(9, 4), New(9, 4)}
	MatMulTransBBatchInto([]*Tensor{a, b}, []*Tensor{bt, bt}, touts)
	check("MatMulTransBBatchInto[0]", MatMulTransB(a, bt), touts[0])
	check("MatMulTransBBatchInto[1]", MatMulTransB(b, bt), touts[1])

	_ = gamma
	_ = beta
}

// TestLayerNormAndActIntoKernels covers the normalization and
// activation Into kernels separately (their references are computed
// against the ag forward formulas in the ag package tests; here we
// only check aliasing and shape behavior plus determinism).
func TestLayerNormAndActIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Rand(rng, 6, 10, 1)
	gamma := Rand(rng, 1, 10, 1)
	beta := Rand(rng, 1, 10, 1)

	out1 := New(6, 10)
	LayerNormRowsInto(a, gamma, beta, 1e-5, out1)
	aliased := a.Clone()
	LayerNormRowsInto(aliased, gamma, beta, 1e-5, aliased)
	if !Equal(out1, aliased, 0) {
		t.Fatal("LayerNormRowsInto aliased result differs")
	}

	for name, f := range map[string]func(a, out *Tensor){
		"ReLUInto":    ReLUInto,
		"GELUInto":    GELUInto,
		"TanhInto":    TanhInto,
		"SigmoidInto": SigmoidInto,
	} {
		fresh := New(6, 10)
		f(a, fresh)
		al := a.Clone()
		f(al, al)
		if !Equal(fresh, al, 0) {
			t.Fatalf("%s aliased result differs", name)
		}
	}
}
