// Per-tensor symmetric int8 quantization for the weight-stationary
// matmuls of the inference tier.
//
// A Linear's float64 weight [in, out] is quantized once at lowering
// time (QuantizeLinear) with one symmetric scale per OUTPUT row —
// scale_j = maxabs(w[:,j]) / 127 — and stored transposed [out, in] so
// each output channel's weights are one contiguous int8 row the dot
// kernel streams. At serve time activations are quantized dynamically
// per row (same maxabs/127 rule), products accumulate in int32, and
// the dequantization (acc * aScale * wScale[j]) is fused into the
// bias add — one write per output element, no intermediate int32
// matrix.
//
// The int32 accumulator cannot overflow: |q| <= 127, so k products
// sum to at most 127*127*k = 16129*k, which stays under 2^31 for any
// k < 133000 — far beyond any model dimension here.
//
// Like every kernel in this package, output rows are computed
// independently with a fixed per-element order, so serial and sharded
// results are bitwise identical.
package tensor

import (
	"fmt"
	"math"

	"mtmlf/internal/parallel"
)

// Int8Matrix is a per-row symmetrically quantized weight matrix,
// stored transposed relative to the float64 Linear weight it was
// lowered from: row j holds output channel j's In weights.
type Int8Matrix struct {
	// Data holds the quantized weights, row-major [Out, In].
	Data []int8
	// Scales[j] reconstructs row j: w[j][l] ≈ float32(Data[j*In+l]) * Scales[j].
	Scales []float32
	// Out, In are the output and input channel counts.
	Out, In int
}

// QuantizeLinear quantizes a float64 weight matrix w [in, out] to
// int8 with one symmetric scale per output row, stored transposed
// [out, in]. An all-zero output row gets scale 1 (nothing to encode).
func QuantizeLinear(w *Tensor) *Int8Matrix {
	in, out := w.Rows(), w.Cols()
	q := &Int8Matrix{
		Data:   make([]int8, out*in),
		Scales: make([]float32, out),
		Out:    out,
		In:     in,
	}
	for j := 0; j < out; j++ {
		var maxAbs float64
		for l := 0; l < in; l++ {
			a := math.Abs(w.Data[l*out+j])
			if a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			q.Scales[j] = 1
			continue
		}
		scale := maxAbs / 127
		q.Scales[j] = float32(scale)
		row := q.Data[j*in : (j+1)*in]
		for l := 0; l < in; l++ {
			row[l] = int8(math.Round(w.Data[l*out+j] / scale))
		}
	}
	return q
}

// Dequantize reconstructs the float64 weight matrix [in, out] —
// lowering-pass round-trip tests compare it against the original.
func (q *Int8Matrix) Dequantize() *Tensor {
	w := New(q.In, q.Out)
	for j := 0; j < q.Out; j++ {
		s := float64(q.Scales[j])
		row := q.Data[j*q.In : (j+1)*q.In]
		for l, v := range row {
			w.Data[l*q.Out+j] = float64(v) * s
		}
	}
	return w
}

// Bytes returns the resident size of the quantized weights: one byte
// per element plus the f32 scale vector.
func (q *Int8Matrix) Bytes() int { return len(q.Data) + 4*len(q.Scales) }

// QuantizeRowInt8 quantizes one f32 activation row symmetrically into
// q (len(q) >= len(row)) and returns the scale: q[l] = round(row[l] /
// scale) with scale = maxabs/127, so |row[l] - float32(q[l])*scale|
// <= scale/2 for every element (the property the lowering tests
// assert). An all-zero row quantizes to zeros with scale 1.
func QuantizeRowInt8(row []float32, q []int8) float32 {
	var maxAbs float32
	for _, v := range row {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range row {
			q[i] = 0
		}
		return 1
	}
	// Round in float64: |x| <= 127 so int8(x ± 0.5) never overflows,
	// and the half-away rounding keeps the dequantization error of
	// every element within scale/2.
	inv := 127 / float64(maxAbs)
	for i, v := range row {
		x := float64(v) * inv
		if x >= 0 {
			q[i] = int8(x + 0.5)
		} else {
			q[i] = int8(x - 0.5)
		}
	}
	return float32(float64(maxAbs) / 127)
}

// MatMulInt8Into computes out = a @ w^T_dequant + bias for an f32
// activation a [m,k] against int8 weights w (Out=n output channels of
// In=k weights each): each activation row is quantized dynamically,
// products accumulate in int32, and dequantization is fused into the
// bias add. qbuf is caller-provided scratch of at least m*k bytes
// (ag.EvalF32 owns one per session, keeping the steady state
// allocation-free); shards write disjoint row ranges of it.
func MatMulInt8Into(a *F32, w *Int8Matrix, bias, out *F32, qbuf []int8) {
	m, k := a.Rows(), a.Cols()
	n := w.Out
	if w.In != k {
		panic(fmt.Sprintf("tensor: MatMulInt8Into inner dim mismatch [%d,%d] @ int8[%d,%d]", m, k, w.Out, w.In))
	}
	if bias.Rows() != 1 || bias.Cols() != n || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInt8Into %v + bias%v -> %v (want [%d,%d])", a.Shape, bias.Shape, out.Shape, m, n))
	}
	if len(qbuf) < m*k {
		panic(fmt.Sprintf("tensor: MatMulInt8Into scratch %d < %d", len(qbuf), m*k))
	}
	if m*k*n < serialFlops {
		matMulInt8Rows(a.Data, w, bias.Data, out.Data, qbuf, k, n, 0, m)
		return
	}
	parallel.For(m, rowGrain(k*n), func(i0, i1 int) {
		matMulInt8Rows(a.Data, w, bias.Data, out.Data, qbuf, k, n, i0, i1)
	})
}

// matMulInt8Rows serves output rows [i0, i1): quantize each activation
// row in place in its qbuf segment, then dot it against every weight
// row with a 4x-unrolled int32 accumulation.
func matMulInt8Rows(a []float32, w *Int8Matrix, bias, out []float32, qbuf []int8, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : i*k+k : i*k+k]
		q := qbuf[i*k : i*k+k : i*k+k]
		as := QuantizeRowInt8(arow, q)
		orow := out[i*n : i*n+n : i*n+n]
		for j := 0; j < n; j++ {
			wrow := w.Data[j*k : j*k+k : j*k+k]
			var s0, s1, s2, s3 int32
			l := 0
			for ; l+4 <= k; l += 4 {
				qw := q[l : l+4 : l+4]
				ww := wrow[l : l+4 : l+4]
				s0 += int32(qw[0]) * int32(ww[0])
				s1 += int32(qw[1]) * int32(ww[1])
				s2 += int32(qw[2]) * int32(ww[2])
				s3 += int32(qw[3]) * int32(ww[3])
			}
			acc := (s0 + s1) + (s2 + s3)
			for ; l < k; l++ {
				acc += int32(q[l]) * int32(wrow[l])
			}
			orow[j] = float32(acc)*as*w.Scales[j] + bias[j]
		}
	}
}
