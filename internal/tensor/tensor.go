// Package tensor provides dense float64 matrices and the raw numeric
// kernels used by the autodiff engine in internal/ag. It is the lowest
// layer of the deep-learning substrate that substitutes for PyTorch in
// this reproduction (see DESIGN.md, substitution table).
//
// Tensors are row-major. Almost all of the model code works with rank-2
// tensors (matrices); vectors are represented as 1xN matrices.
//
// The matrix-multiply kernels live in matmul.go: they are
// cache-blocked and shard large products by output row across the
// package worker pool (see SetParallelism), while producing bitwise
// identical results at every parallelism level.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major float64 tensor. The zero value is not
// usable; construct tensors with New, Zeros, FromSlice, or Rand.
type Tensor struct {
	// Data holds the elements in row-major order.
	Data []float64
	// Shape holds the extent of each dimension.
	Shape []int
}

// New creates a zero-initialized tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", s))
		}
		n *= s
	}
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Tensor{Data: make([]float64, n), Shape: sh}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full creates a tensor filled with value v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice creates a rows x cols matrix from a flat row-major slice.
// The slice is copied.
func FromSlice(data []float64, rows, cols int) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	t := New(rows, cols)
	copy(t.Data, data)
	return t
}

// FromRows creates a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	t := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("tensor: FromRows ragged input")
		}
		copy(t.Data[i*c:(i+1)*c], r)
	}
	return t
}

// Vector creates a 1xN matrix from data (copied).
func Vector(data []float64) *Tensor { return FromSlice(append([]float64(nil), data...), 1, len(data)) }

// Rand creates a rows x cols matrix with entries drawn uniformly from
// [-scale, scale] using rng.
func Rand(rng *rand.Rand, rows, cols int, scale float64) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return t
}

// RandNorm creates a rows x cols matrix with N(0, std) entries.
func RandNorm(rng *rand.Rand, rows, cols int, std float64) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Xavier creates a rows x cols matrix with Glorot-uniform initialization.
func Xavier(rng *rand.Rand, rows, cols int) *Tensor {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return Rand(rng, rows, cols, limit)
}

// Rows returns the first dimension extent (panics if not a matrix).
func (t *Tensor) Rows() int { t.mustMatrix(); return t.Shape[0] }

// Cols returns the second dimension extent (panics if not a matrix).
func (t *Tensor) Cols() int { t.mustMatrix(); return t.Shape[1] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

func (t *Tensor) mustMatrix() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: expected matrix, got shape %v", t.Shape))
	}
}

// At returns element (i, j) of a matrix.
func (t *Tensor) At(i, j int) float64 {
	t.mustMatrix()
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns element (i, j) of a matrix.
func (t *Tensor) Set(i, j int, v float64) {
	t.mustMatrix()
	t.Data[i*t.Shape[1]+j] = v
}

// Row returns a view (not a copy) of row i of a matrix.
func (t *Tensor) Row(i int) []float64 {
	t.mustMatrix()
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Add returns t + o elementwise.
func Add(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the Hadamard (elementwise) product.
func Mul(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// Transpose returns the matrix transpose.
func Transpose(a *Tensor) *Tensor {
	a.mustMatrix()
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// SumAll returns the sum of all elements.
func SumAll(a *Tensor) float64 {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	return s
}

// MaxAll returns the maximum element (−Inf for empty tensors).
func MaxAll(a *Tensor) float64 {
	m := math.Inf(-1)
	for _, v := range a.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// SumRows returns a 1xN row containing the column sums of a matrix.
func SumRows(a *Tensor) *Tensor {
	a.mustMatrix()
	m, n := a.Shape[0], a.Shape[1]
	out := New(1, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax independently to
// each row of a matrix.
func SoftmaxRows(a *Tensor) *Tensor {
	a.mustMatrix()
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var z float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			z += e
		}
		if z == 0 {
			z = 1
		}
		for j := range orow {
			orow[j] /= z
		}
	}
	return out
}

// Equal reports whether two tensors have identical shape and all
// elements within eps of each other.
func Equal(a, b *Tensor, eps float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if len(t.Shape) == 2 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor[%dx%d]", t.Shape[0], t.Shape[1])
		if t.Size() <= 64 {
			b.WriteString("{")
			for i := 0; i < t.Shape[0]; i++ {
				if i > 0 {
					b.WriteString("; ")
				}
				for j := 0; j < t.Shape[1]; j++ {
					if j > 0 {
						b.WriteString(" ")
					}
					fmt.Fprintf(&b, "%.4g", t.At(i, j))
				}
			}
			b.WriteString("}")
		}
		return b.String()
	}
	return fmt.Sprintf("Tensor%v(%d elems)", t.Shape, t.Size())
}

// HasNaN reports whether any element is NaN or Inf. Training loops use
// this as a cheap sanity guard.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
