package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapesAndZeroInit(t *testing.T) {
	tt := New(3, 4)
	if tt.Rows() != 3 || tt.Cols() != 4 || tt.Size() != 12 {
		t.Fatalf("bad shape: %v", tt.Shape)
	}
	for _, v := range tt.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At/Set roundtrip failed")
	}
	row := m.Row(1)
	row[0] = 3 // Row is a view
	if m.At(1, 0) != 3 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromSliceAndVector(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if m.At(1, 1) != 5 {
		t.Fatalf("FromSlice layout wrong: %v", m.Data)
	}
	v := Vector([]float64{1, 2})
	if v.Rows() != 1 || v.Cols() != 2 {
		t.Fatal("Vector shape wrong")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.At(2, 1) != 6 {
		t.Fatal("FromRows wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	if got := Add(a, b).Data; got[3] != 12 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 4 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 12 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Scale(a, 2).Data; got[2] != 6 {
		t.Fatalf("Scale wrong: %v", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want, 1e-12) {
		t.Fatalf("MatMul got %v want %v", c, want)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: MatMulTransB(a, b) == MatMul(a, Transpose(b)) and
// MatMulTransA(a, b) == MatMul(Transpose(a), b).
func TestMatMulTransposeVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Rand(rng, m, k, 1)
		b := Rand(rng, n, k, 1)
		got := MatMulTransB(a, b)
		want := MatMul(a, Transpose(b))
		if !Equal(got, want, 1e-10) {
			t.Fatalf("MatMulTransB mismatch at %dx%dx%d", m, k, n)
		}
		c := Rand(rng, k, m, 1)
		d := Rand(rng, k, n, 1)
		got2 := MatMulTransA(c, d)
		want2 := MatMul(Transpose(c), d)
		if !Equal(got2, want2, 1e-10) {
			t.Fatalf("MatMulTransA mismatch at %dx%dx%d", m, k, n)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := Rand(rng, m, n, 2)
		return Equal(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumRowsAndSumAll(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumRows(a)
	if s.Rows() != 1 || s.Data[0] != 5 || s.Data[1] != 7 || s.Data[2] != 9 {
		t.Fatalf("SumRows wrong: %v", s.Data)
	}
	if SumAll(a) != 21 {
		t.Fatal("SumAll wrong")
	}
}

// Property: softmax rows are valid probability distributions and
// invariant to per-row constant shifts.
func TestSoftmaxRowsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(5), 1+rng.Intn(7)
		a := Rand(rng, m, n, 5)
		s := SoftmaxRows(a)
		shifted := a.Clone()
		for i := 0; i < m; i++ {
			c := rng.Float64() * 10
			row := shifted.Row(i)
			for j := range row {
				row[j] += c
			}
		}
		s2 := SoftmaxRows(shifted)
		for i := 0; i < m; i++ {
			var sum float64
			for _, v := range s.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return Equal(s, s2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	a := FromSlice([]float64{1000, 1001, 999}, 1, 3)
	s := SoftmaxRows(a)
	if s.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestAddInPlaceAndScaleInPlace(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{3, 4}, 1, 2)
	a.AddInPlace(b)
	a.ScaleInPlace(2)
	if a.Data[0] != 8 || a.Data[1] != 12 {
		t.Fatalf("in-place ops wrong: %v", a.Data)
	}
}

func TestXavierBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := Xavier(rng, 16, 48)
	limit := math.Sqrt(6.0 / 64.0)
	for _, v := range w.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier value %v beyond limit %v", v, limit)
		}
	}
}

func TestHasNaN(t *testing.T) {
	a := New(1, 2)
	if a.HasNaN() {
		t.Fatal("zeros must not report NaN")
	}
	a.Data[1] = math.Inf(1)
	if !a.HasNaN() {
		t.Fatal("Inf must be reported")
	}
}

func TestMaxAll(t *testing.T) {
	a := FromSlice([]float64{-5, 3, 2}, 1, 3)
	if MaxAll(a) != 3 {
		t.Fatal("MaxAll wrong")
	}
}

func TestFullAndFillZero(t *testing.T) {
	a := Full(2.5, 2, 2)
	if a.At(1, 1) != 2.5 {
		t.Fatal("Full wrong")
	}
	a.Zero()
	if SumAll(a) != 0 {
		t.Fatal("Zero wrong")
	}
}
