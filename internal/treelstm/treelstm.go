// Package treelstm implements the child-sum Tree-LSTM plan estimator
// of Sun & Li ("An End-to-End Learning-based Cost Estimator"), the
// previous state-of-the-art baseline MTMLF-QO is compared against in
// the paper's Table 1. The plan tree is encoded bottom-up: each node
// combines its feature vector with its children's hidden states
// through an LSTM cell, and per-node MLP heads read cardinality and
// cost estimates off the hidden state.
package treelstm

import (
	"math"
	"math/rand"

	"mtmlf/internal/ag"
	"mtmlf/internal/nn"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
	"mtmlf/internal/tensor"
	"mtmlf/internal/workload"
)

// Config sizes the model.
type Config struct {
	// Dim is the hidden state width.
	Dim int
	// MaxTables bounds the table one-hot width.
	MaxTables int
	// LR is the Adam learning rate.
	LR float64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config { return Config{Dim: 32, MaxTables: 24, LR: 1e-3} }

// featWidth is the node feature width: table multi-hot, scan/join
// one-hots, isJoin flag, and 4 statistic features (estimated log
// selectivity, filter count, LIKE count, log table size).
func (c Config) featWidth() int {
	return c.MaxTables + plan.NumScanOps + plan.NumJoinOps + 1 + 4
}

// Model is a Tree-LSTM estimator bound to one database.
type Model struct {
	Cfg   Config
	DB    *sqldb.DB
	Stats *stats.DBStats

	// Child-sum LSTM cell parameters: gate(x, h) = Wx·x + Uh·h.
	wi, ui *nn.Linear
	wf, uf *nn.Linear
	wo, uo *nn.Linear
	wu, uu *nn.Linear

	cardHead *nn.MLP
	costHead *nn.MLP
}

// New builds a model with ANALYZE statistics for featurization.
func New(db *sqldb.DB, cfg Config, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	w := cfg.featWidth()
	d := cfg.Dim
	return &Model{
		Cfg:   cfg,
		DB:    db,
		Stats: stats.Analyze(db),
		wi:    nn.NewLinear(rng, w, d), ui: nn.NewLinear(rng, d, d),
		wf: nn.NewLinear(rng, w, d), uf: nn.NewLinear(rng, d, d),
		wo: nn.NewLinear(rng, w, d), uo: nn.NewLinear(rng, d, d),
		wu: nn.NewLinear(rng, w, d), uu: nn.NewLinear(rng, d, d),
		cardHead: nn.NewMLP(rng, nn.ActGELU, d, d, 1),
		costHead: nn.NewMLP(rng, nn.ActGELU, d, d, 1),
	}
}

// Params implements nn.Module.
func (m *Model) Params() []*ag.Value {
	return nn.CollectParams(m.wi, m.ui, m.wf, m.uf, m.wo, m.uo, m.wu, m.uu, m.cardHead, m.costHead)
}

// nodeFeature builds the input vector of one plan node.
func (m *Model) nodeFeature(q *sqldb.Query, n *plan.Node) *tensor.Tensor {
	cfg := m.Cfg
	f := tensor.New(1, cfg.featWidth())
	for _, t := range n.Tables() {
		if i := m.DB.TableIndex(t); i >= 0 && i < cfg.MaxTables {
			f.Data[i] = 1
		}
	}
	off := cfg.MaxTables
	if n.IsLeaf() {
		f.Data[off+int(n.Scan)] = 1
	} else {
		f.Data[off+plan.NumScanOps+int(n.Join)] = 1
		f.Data[off+plan.NumScanOps+plan.NumJoinOps] = 1
	}
	off += plan.NumScanOps + plan.NumJoinOps + 1
	if n.IsLeaf() {
		filters := q.FiltersFor(n.Table)
		est := m.Stats.EstimateTableCard(n.Table, filters)
		rows := float64(m.DB.Table(n.Table).NumRows())
		f.Data[off] = math.Log(est+1) / 20
		f.Data[off+1] = float64(len(filters)) / 4
		likes := 0
		for _, fl := range filters {
			if fl.Op == sqldb.OpLike {
				likes++
			}
		}
		f.Data[off+2] = float64(likes) / 4
		f.Data[off+3] = math.Log(rows+1) / 20
	}
	return f
}

// state is the (h, c) pair of one subtree.
type state struct{ h, c *ag.Value }

// cell applies the child-sum Tree-LSTM cell.
func (m *Model) cell(x *ag.Value, children []state) state {
	var hsum *ag.Value
	if len(children) == 0 {
		hsum = ag.Const(tensor.New(1, m.Cfg.Dim))
	} else {
		hsum = children[0].h
		for _, ch := range children[1:] {
			hsum = ag.Add(hsum, ch.h)
		}
	}
	i := ag.Sigmoid(ag.Add(m.wi.Forward(x), m.ui.Forward(hsum)))
	o := ag.Sigmoid(ag.Add(m.wo.Forward(x), m.uo.Forward(hsum)))
	u := ag.Tanh(ag.Add(m.wu.Forward(x), m.uu.Forward(hsum)))
	c := ag.Mul(i, u)
	for _, ch := range children {
		fk := ag.Sigmoid(ag.Add(m.wf.Forward(x), m.uf.Forward(ch.h)))
		c = ag.Add(c, ag.Mul(fk, ch.c))
	}
	return state{h: ag.Mul(o, ag.Tanh(c)), c: c}
}

// encode returns the hidden state of every node in post-order.
func (m *Model) encode(q *sqldb.Query, root *plan.Node) []*ag.Value {
	var hs []*ag.Value
	var rec func(n *plan.Node) state
	rec = func(n *plan.Node) state {
		var children []state
		if !n.IsLeaf() {
			children = []state{rec(n.Left), rec(n.Right)}
		}
		s := m.cell(ag.Const(m.nodeFeature(q, n)), children)
		hs = append(hs, s.h)
		return s
	}
	rec(root)
	return hs
}

// forward produces per-node log-card and log-cost predictions.
func (m *Model) forward(q *sqldb.Query, root *plan.Node) (cards, costs *ag.Value) {
	hs := m.encode(q, root)
	h := ag.ConcatRows(hs...)
	return m.cardHead.Forward(h), m.costHead.Forward(h)
}

// Predict returns per-node cardinality and cost estimates (post-order,
// exponentiated and clamped to >= 1).
func (m *Model) Predict(lq *workload.LabeledQuery) (cards, costs []float64) {
	pc, pco := m.forward(lq.Q, lq.Plan)
	return expClamp(pc.T.Data), expClamp(pco.T.Data)
}

func expClamp(logs []float64) []float64 {
	out := make([]float64, len(logs))
	for i, v := range logs {
		if v > 40 {
			v = 40
		}
		e := math.Exp(v)
		if e < 1 {
			e = 1
		}
		out[i] = e
	}
	return out
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Steps     int
	FinalLoss float64
}

// Train fits the model on labeled plans with the same log q-error loss
// used by MTMLF-QO, making the Table 1 comparison apples-to-apples.
func (m *Model) Train(train []*workload.LabeledQuery, epochs int, seed int64) TrainStats {
	opt := nn.NewAdam(m.Params(), m.Cfg.LR)
	rng := rand.New(rand.NewSource(seed))
	var running float64
	steps := 0
	for ep := 0; ep < epochs; ep++ {
		for _, qi := range rng.Perm(len(train)) {
			lq := train[qi]
			opt.ZeroGrad()
			pc, pco := m.forward(lq.Q, lq.Plan)
			loss := ag.Add(
				ag.MeanAll(ag.Abs(ag.Sub(pc, logConst(lq.NodeCards)))),
				ag.MeanAll(ag.Abs(ag.Sub(pco, logConst(lq.NodeCosts)))),
			)
			loss.Backward()
			opt.Step()
			running = 0.95*running + 0.05*loss.Item()
			steps++
		}
	}
	return TrainStats{Steps: steps, FinalLoss: running}
}

func logConst(vals []float64) *ag.Value {
	t := tensor.New(len(vals), 1)
	for i, v := range vals {
		if v < 1 {
			v = 1
		}
		t.Data[i] = math.Log(v)
	}
	return ag.Const(t)
}
