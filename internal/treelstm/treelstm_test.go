package treelstm

import (
	"math"
	"testing"

	"mtmlf/internal/datagen"
	"mtmlf/internal/metrics"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/workload"
)

func setup(t *testing.T, seed int64, n int) (*Model, []*workload.LabeledQuery, *sqldb.DB) {
	t.Helper()
	db := datagen.SyntheticIMDB(9, 0.05)
	cfg := DefaultConfig()
	cfg.Dim = 16
	m := New(db, cfg, seed)
	gen := workload.NewGenerator(db, seed+1)
	wcfg := workload.DefaultConfig()
	wcfg.MaxTables = 4
	wcfg.WithOptimal = false
	return m, gen.Generate(n, wcfg), db
}

func TestPredictShapesAndValidity(t *testing.T) {
	m, qs, _ := setup(t, 1, 3)
	for _, lq := range qs {
		cards, costs := m.Predict(lq)
		n := len(lq.Plan.Nodes())
		if len(cards) != n || len(costs) != n {
			t.Fatalf("prediction lengths %d/%d, want %d", len(cards), len(costs), n)
		}
		for i := range cards {
			if cards[i] < 1 || math.IsNaN(cards[i]) || costs[i] < 1 {
				t.Fatalf("invalid prediction card=%g cost=%g", cards[i], costs[i])
			}
		}
	}
}

func TestNodeFeatureContents(t *testing.T) {
	m, qs, db := setup(t, 2, 1)
	lq := qs[0]
	for _, n := range lq.Plan.Nodes() {
		f := m.nodeFeature(lq.Q, n)
		if f.Cols() != m.Cfg.featWidth() {
			t.Fatal("feature width wrong")
		}
		// Table multi-hot count matches the node's tables.
		count := 0.0
		for i := 0; i < m.Cfg.MaxTables; i++ {
			count += f.Data[i]
		}
		if int(count) != len(n.Tables()) {
			t.Fatalf("table multi-hot %v, want %d", count, len(n.Tables()))
		}
		if n.IsLeaf() {
			rows := float64(db.Table(n.Table).NumRows())
			logRows := f.Data[m.Cfg.MaxTables+6+3]
			if math.Abs(logRows-math.Log(rows+1)/20) > 1e-9 {
				t.Fatal("log table size feature wrong")
			}
		}
	}
}

func TestTrainImprovesCardEstimates(t *testing.T) {
	m, qs, _ := setup(t, 3, 40)
	train, _, test := workload.Split(qs, 0.75, 0)
	// Evaluate mean q-error over all node costs: costs are large, so an
	// untrained model (predicting ~1) starts far off and training has
	// unambiguous room to improve.
	eval := func() float64 {
		var errs []float64
		for _, lq := range test {
			cards, costs := m.Predict(lq)
			for i := range cards {
				errs = append(errs, metrics.QError(cards[i], lq.NodeCards[i]))
				errs = append(errs, metrics.QError(costs[i], lq.NodeCosts[i]))
			}
		}
		return metrics.Summarize(errs).Mean
	}
	before := eval()
	st := m.Train(train, 6, 4)
	if st.Steps != 6*len(train) {
		t.Fatalf("steps %d", st.Steps)
	}
	after := eval()
	if after >= before {
		t.Fatalf("training did not improve: %g -> %g", before, after)
	}
}

func TestParamsNonEmpty(t *testing.T) {
	m, _, _ := setup(t, 5, 1)
	// 8 linear layers (W+b each) plus two 2-layer MLPs (2 linears each).
	if len(m.Params()) != 8*2+2*4 {
		t.Fatalf("param group count %d", len(m.Params()))
	}
}
