// Sharded, worker-parallel workload production. The fleet-scale
// corpora the MTMLF pretraining story needs (many databases, many
// thousands of labeled queries each) are embarrassingly parallel to
// produce, but a single Generator is a serial rng stream. The scheme
// here follows the bulk-loading generators (worker-pooled, batched,
// deterministic): examples are produced in fixed-size shards, each
// shard drawing from its own seed derived only from (seed, shard
// index). Shards share the catalog's frozen statistics and fan out
// over the repo-wide worker pool, so the labeled workload is bitwise
// identical at any worker count — and identical again when a corpus
// written from it is read back.
package workload

import (
	"mtmlf/internal/catalog"
	"mtmlf/internal/parallel"
)

// DefaultShardSize is the per-shard example count used when a caller
// passes shardSize <= 0. Small enough to fan out tiny workloads,
// large enough to amortize per-shard rng setup.
const DefaultShardSize = 16

// ShardSeed derives the rng seed of one shard from the workload seed.
// The multiplier is the 64-bit golden-ratio constant (splitmix64's
// increment); consecutive shards land far apart in seed space, and
// the mapping depends on nothing but (seed, shard) — not on worker
// count, scheduling, or which machine runs the shard.
func ShardSeed(seed int64, shard int) int64 {
	return seed + int64(shard+1)*-0x61c8864680b583eb // 0x9e3779b97f4a7c15 as int64
}

// Shard derives a generator that shares this generator's database,
// statistics, and cost model (all frozen, read-only) but draws from
// its own seed — the unit of sharded workload production.
func (g *Generator) Shard(seed int64) *Generator {
	return &Generator{DB: g.DB, Stats: g.Stats, Cost: g.Cost, rng: newRNG(seed)}
}

// GenerateSharded produces n labeled queries over the catalog in
// shards of shardSize (<= 0 means DefaultShardSize), worker-parallel
// on the shared pool. Shard s generates examples [s*shardSize,
// (s+1)*shardSize) from ShardSeed(seed, s); the result is identical
// for every worker count and every shard-to-worker assignment.
func GenerateSharded(cat catalog.Catalog, seed int64, n, shardSize int, cfg Config) []*LabeledQuery {
	if n <= 0 {
		return nil
	}
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	base := NewGeneratorFrom(cat, seed)
	nShards := (n + shardSize - 1) / shardSize
	out := make([]*LabeledQuery, n)
	parallel.For(nShards, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			g := base.Shard(ShardSeed(seed, s))
			start := s * shardSize
			end := start + shardSize
			if end > n {
				end = n
			}
			copy(out[start:end], g.Generate(end-start, cfg))
		}
	})
	return out
}

// RankShard is one rank's slice of a sharded workload: the shard's
// index in the unsharded stream and its examples.
type RankShard struct {
	// Shard is the shard index; the examples cover stream positions
	// [Shard*shardSize, Shard*shardSize+len(Examples)).
	Shard    int
	Examples []*LabeledQuery
}

// GenerateShardedRank produces the shards of GenerateSharded(cat,
// seed, n, shardSize, cfg) that rank owns in a world-rank fleet
// (shard s belongs to rank s mod world — the same stride the
// gradient-exchange plane uses for minibatch slots). Because each
// shard's seed depends only on (seed, shard), the union of every
// rank's output is exactly the unsharded stream, bit for bit, no
// matter how many machines produce it or in what order.
func GenerateShardedRank(cat catalog.Catalog, seed int64, n, shardSize int, cfg Config, world, rank int) []RankShard {
	if n <= 0 {
		return nil
	}
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	if world < 1 {
		world = 1
	}
	base := NewGeneratorFrom(cat, seed)
	nShards := (n + shardSize - 1) / shardSize
	var out []RankShard
	for s := rank % world; s < nShards; s += world {
		g := base.Shard(ShardSeed(seed, s))
		count := shardSize
		if s*shardSize+count > n {
			count = n - s*shardSize
		}
		out = append(out, RankShard{Shard: s, Examples: g.Generate(count, cfg)})
	}
	return out
}
