package workload

import (
	"math"
	"testing"

	"mtmlf/internal/catalog"
	"mtmlf/internal/datagen"
	"mtmlf/internal/parallel"
)

func shardedSetup() catalog.Catalog {
	cfg := datagen.DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 4, 5
	cfg.MinRows, cfg.MaxRows = 60, 120
	return catalog.NewMemory(datagen.GenerateFleet(17, 1, cfg)[0])
}

func equalWorkloads(t *testing.T, a, b []*LabeledQuery) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("workload sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Q.String() != y.Q.String() {
			t.Fatalf("example %d: queries differ:\n%v\n%v", i, x.Q, y.Q)
		}
		if x.Plan.String() != y.Plan.String() {
			t.Fatalf("example %d: plans differ", i)
		}
		if len(x.NodeCards) != len(y.NodeCards) {
			t.Fatalf("example %d: label lengths differ", i)
		}
		for j := range x.NodeCards {
			if math.Float64bits(x.NodeCards[j]) != math.Float64bits(y.NodeCards[j]) ||
				math.Float64bits(x.NodeCosts[j]) != math.Float64bits(y.NodeCosts[j]) {
				t.Fatalf("example %d node %d: labels differ", i, j)
			}
		}
		if math.Float64bits(x.RawCard) != math.Float64bits(y.RawCard) {
			t.Fatalf("example %d: raw card differs", i)
		}
		if len(x.OptimalOrder) != len(y.OptimalOrder) {
			t.Fatalf("example %d: optimal order lengths differ", i)
		}
		for j := range x.OptimalOrder {
			if x.OptimalOrder[j] != y.OptimalOrder[j] {
				t.Fatalf("example %d: optimal orders differ", i)
			}
		}
	}
}

// TestGenerateShardedWorkerCountInvariant is the workload half of the
// data plane's determinism contract: the same seed must produce the
// identical labeled workload whether the shards run on 1 worker or 4.
func TestGenerateShardedWorkerCountInvariant(t *testing.T) {
	cat := shardedSetup()
	cfg := DefaultConfig()
	cfg.MaxTables = 3
	prev := parallel.SetWorkers(1)
	serial := GenerateSharded(cat, 23, 22, 4, cfg)
	parallel.SetWorkers(4)
	par := GenerateSharded(cat, 23, 22, 4, cfg)
	parallel.SetWorkers(prev)
	equalWorkloads(t, serial, par)
}

// TestGenerateShardedRepeatable: same seed twice ⇒ identical output;
// different seed ⇒ different output (the seed actually matters).
func TestGenerateShardedRepeatable(t *testing.T) {
	cat := shardedSetup()
	cfg := DefaultConfig()
	cfg.MaxTables = 3
	a := GenerateSharded(cat, 9, 10, 4, cfg)
	b := GenerateSharded(cat, 9, 10, 4, cfg)
	equalWorkloads(t, a, b)
	c := GenerateSharded(cat, 10, 10, 4, cfg)
	same := true
	for i := range a {
		if a[i].Q.String() != c[i].Q.String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestGenerateShardedShardAlignment: a shard boundary is a contract —
// example i comes from shard i/shardSize at ShardSeed(seed, shard) —
// so a prefix of a larger request equals the smaller request whenever
// they share whole shards.
func TestGenerateShardedShardAlignment(t *testing.T) {
	cat := shardedSetup()
	cfg := DefaultConfig()
	cfg.MaxTables = 3
	small := GenerateSharded(cat, 41, 8, 4, cfg)
	large := GenerateSharded(cat, 41, 16, 4, cfg)
	equalWorkloads(t, small, large[:8])
}

// TestSubSourceAndMaterialize covers the streaming split helpers.
func TestSubSourceAndMaterialize(t *testing.T) {
	cat := shardedSetup()
	cfg := DefaultConfig()
	cfg.MaxTables = 3
	all := GenerateSharded(cat, 3, 9, 4, cfg)
	src := SliceSource(all)
	sub, err := SubSource(src, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 4 {
		t.Fatalf("sub len %d, want 4", sub.Len())
	}
	got, err := Materialize(sub)
	if err != nil {
		t.Fatal(err)
	}
	equalWorkloads(t, all[3:7], got)
	if _, err := sub.Example(4); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := SubSource(src, 5, 99); err == nil {
		t.Fatal("expected invalid-range error")
	}
}

// TestGenerateShardedRankAlignment is the cross-rank half of the
// sharding contract the distributed trainer leans on: for 2- and
// 3-rank fleets, the union of every rank's shards — reassembled by
// shard index — must be the unsharded stream in stream order, bit for
// bit, and no shard may be produced by two ranks.
func TestGenerateShardedRankAlignment(t *testing.T) {
	cat := shardedSetup()
	cfg := DefaultConfig()
	cfg.MaxTables = 3
	const n, shardSize = 22, 4 // short final shard included
	ref := GenerateSharded(cat, 31, n, shardSize, cfg)
	for _, world := range []int{2, 3} {
		union := make([]*LabeledQuery, 0, n)
		seen := map[int]int{}
		for rank := 0; rank < world; rank++ {
			for _, s := range GenerateShardedRank(cat, 31, n, shardSize, cfg, world, rank) {
				if s.Shard%world != rank {
					t.Fatalf("world %d: rank %d produced shard %d, owned by rank %d",
						world, rank, s.Shard, s.Shard%world)
				}
				seen[s.Shard]++
			}
		}
		for shard, c := range seen {
			if c != 1 {
				t.Fatalf("world %d: shard %d produced by %d ranks", world, shard, c)
			}
		}
		// Reassemble in shard order and compare to the unsharded stream.
		byShard := make(map[int][]*LabeledQuery)
		for rank := 0; rank < world; rank++ {
			for _, s := range GenerateShardedRank(cat, 31, n, shardSize, cfg, world, rank) {
				byShard[s.Shard] = s.Examples
			}
		}
		nShards := (n + shardSize - 1) / shardSize
		for s := 0; s < nShards; s++ {
			union = append(union, byShard[s]...)
		}
		equalWorkloads(t, ref, union)
	}
}
