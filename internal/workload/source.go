// Streaming access to labeled workloads. A Source abstracts where
// training examples come from — a fully materialized in-memory slice
// (SliceSource, the legacy path) or an on-disk corpus decoded on
// demand (internal/corpus) — so the training loop never has to hold a
// whole corpus in RAM, and the trajectory it produces cannot depend
// on which backend fed it.
package workload

import (
	"fmt"

	"mtmlf/internal/parallel"
)

// Source is random access to a labeled workload. Example must be safe
// for concurrent callers (the trainer fetches a minibatch's examples
// worker-parallel) and must return the same example bits for the same
// index on every call — that invariance is what keeps the training
// trajectory identical between in-memory and on-disk backends.
type Source interface {
	// Len is the number of examples.
	Len() int
	// Example returns example i (0 <= i < Len). Implementations backed
	// by storage may fail with an I/O error.
	Example(i int) (*LabeledQuery, error)
}

// SliceSource adapts a materialized example slice to Source — the
// in-memory backend.
type SliceSource []*LabeledQuery

// Len implements Source.
func (s SliceSource) Len() int { return len(s) }

// Example implements Source.
func (s SliceSource) Example(i int) (*LabeledQuery, error) { return s[i], nil }

// SubSource restricts src to the half-open index range [lo, hi) — how
// train/validation/test splits are expressed over a streaming corpus
// without materializing it.
func SubSource(src Source, lo, hi int) (Source, error) {
	if lo < 0 || hi < lo || hi > src.Len() {
		return nil, fmt.Errorf("workload: sub-source [%d, %d) outside [0, %d)", lo, hi, src.Len())
	}
	return &subSource{src: src, lo: lo, n: hi - lo}, nil
}

type subSource struct {
	src Source
	lo  int
	n   int
}

func (s *subSource) Len() int { return s.n }

func (s *subSource) Example(i int) (*LabeledQuery, error) {
	if i < 0 || i >= s.n {
		return nil, fmt.Errorf("workload: example %d outside sub-source of %d", i, s.n)
	}
	return s.src.Example(s.lo + i)
}

// Materialize fetches every example of a source into memory
// (worker-parallel), for consumers that need slices — evaluation
// loops, the legacy TrainJoint entry point, round-trip tests.
func Materialize(src Source) ([]*LabeledQuery, error) {
	if s, ok := src.(SliceSource); ok {
		return s, nil
	}
	n := src.Len()
	out := make([]*LabeledQuery, n)
	errs := make([]error, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], errs[i] = src.Example(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
