// Streaming access to labeled workloads. A Source abstracts where
// training examples come from — a fully materialized in-memory slice
// (SliceSource, the legacy path) or an on-disk corpus decoded on
// demand (internal/corpus) — so the training loop never has to hold a
// whole corpus in RAM, and the trajectory it produces cannot depend
// on which backend fed it.
package workload

import (
	"fmt"
	"sort"

	"mtmlf/internal/parallel"
)

// Source is random access to a labeled workload. Example must be safe
// for concurrent callers (the trainer fetches a minibatch's examples
// worker-parallel) and must return the same example bits for the same
// index on every call — that invariance is what keeps the training
// trajectory identical between in-memory and on-disk backends.
type Source interface {
	// Len is the number of examples.
	Len() int
	// Example returns example i (0 <= i < Len). Implementations backed
	// by storage may fail with an I/O error.
	Example(i int) (*LabeledQuery, error)
}

// SliceSource adapts a materialized example slice to Source — the
// in-memory backend.
type SliceSource []*LabeledQuery

// Len implements Source.
func (s SliceSource) Len() int { return len(s) }

// Example implements Source. Like the storage-backed sources, a bad
// index is an error (the Source contract), never a panic.
func (s SliceSource) Example(i int) (*LabeledQuery, error) {
	if i < 0 || i >= len(s) {
		return nil, fmt.Errorf("workload: example %d outside [0, %d)", i, len(s))
	}
	return s[i], nil
}

// SubSource restricts src to the half-open index range [lo, hi) — how
// train/validation/test splits are expressed over a streaming corpus
// without materializing it.
func SubSource(src Source, lo, hi int) (Source, error) {
	if lo < 0 || hi < lo || hi > src.Len() {
		return nil, fmt.Errorf("workload: sub-source [%d, %d) outside [0, %d)", lo, hi, src.Len())
	}
	return &subSource{src: src, lo: lo, n: hi - lo}, nil
}

type subSource struct {
	src Source
	lo  int
	n   int
}

func (s *subSource) Len() int { return s.n }

func (s *subSource) Example(i int) (*LabeledQuery, error) {
	if i < 0 || i >= s.n {
		return nil, fmt.Errorf("workload: example %d outside sub-source of %d", i, s.n)
	}
	return s.src.Example(s.lo + i)
}

// Concat pools sources into one Source with a deterministic global
// index order: all of srcs[0]'s examples first, then srcs[1]'s, and
// so on — the order Algorithm 1 pools per-database workloads in. The
// pool is a view: nothing is materialized, and each access resolves
// to exactly one underlying source, so a streaming epoch over a
// multi-database corpus still touches one minibatch at a time.
func Concat(srcs ...Source) *ConcatSource {
	starts := make([]int, len(srcs)+1)
	for i, s := range srcs {
		starts[i+1] = starts[i] + s.Len()
	}
	return &ConcatSource{srcs: srcs, starts: starts}
}

// ConcatSource is the pooled multi-source Source built by Concat.
type ConcatSource struct {
	srcs   []Source
	starts []int // starts[i] is the global index of srcs[i]'s first example
}

// Len implements Source.
func (c *ConcatSource) Len() int { return c.starts[len(c.srcs)] }

// Locate maps a global index to (source index, local index) — how the
// MLA trainer finds which database (and therefore which featurizer) a
// pooled example belongs to.
func (c *ConcatSource) Locate(i int) (src, local int, err error) {
	if i < 0 || i >= c.Len() {
		return 0, 0, fmt.Errorf("workload: example %d outside [0, %d)", i, c.Len())
	}
	// First source whose start exceeds i, minus one.
	s := sort.SearchInts(c.starts[1:], i+1)
	return s, i - c.starts[s], nil
}

// Example implements Source.
func (c *ConcatSource) Example(i int) (*LabeledQuery, error) {
	s, local, err := c.Locate(i)
	if err != nil {
		return nil, err
	}
	return c.srcs[s].Example(local)
}

// Materialize fetches every example of a source into memory
// (worker-parallel), for consumers that need slices — evaluation
// loops, the legacy TrainJoint entry point, round-trip tests.
func Materialize(src Source) ([]*LabeledQuery, error) {
	if s, ok := src.(SliceSource); ok {
		return s, nil
	}
	n := src.Len()
	out := make([]*LabeledQuery, n)
	if err := parallel.ForErr(n, 1, func(i int) error {
		var err error
		out[i], err = src.Example(i)
		return err
	}); err != nil {
		return nil, err
	}
	return out, nil
}
