package workload

import (
	"strings"
	"testing"
)

// TestSliceSourceBounds: the Source contract says a bad index is an
// error, never a panic — the trainer may be driven by a corrupt or
// foreign index list, and the in-memory backend must fail the same
// way the corpus backend does.
func TestSliceSourceBounds(t *testing.T) {
	src := SliceSource{&LabeledQuery{}, &LabeledQuery{}, &LabeledQuery{}}
	if got, err := src.Example(2); err != nil || got == nil {
		t.Fatalf("valid index failed: %v", err)
	}
	for _, i := range []int{-1, 3, 100} {
		lq, err := src.Example(i)
		if err == nil {
			t.Fatalf("index %d: expected error, got example %v", i, lq)
		}
		if !strings.Contains(err.Error(), "outside [0, 3)") {
			t.Fatalf("index %d: error %q does not name the valid range", i, err)
		}
	}
}

// TestConcatSourceOrderAndLocate: the pooled multi-source view must
// expose a deterministic global order (source 0 first, then source 1,
// …) and map global indices back to (source, local) pairs.
func TestConcatSourceOrderAndLocate(t *testing.T) {
	mk := func(n int, card float64) SliceSource {
		out := make(SliceSource, n)
		for i := range out {
			out[i] = &LabeledQuery{Card: card + float64(i)}
		}
		return out
	}
	a, b, c := mk(3, 100), mk(0, 0), mk(2, 200)
	pool := Concat(a, b, c)
	if pool.Len() != 5 {
		t.Fatalf("Len %d, want 5", pool.Len())
	}
	wantSrc := []int{0, 0, 0, 2, 2}
	wantLocal := []int{0, 1, 2, 0, 1}
	wantCard := []float64{100, 101, 102, 200, 201}
	for gi := 0; gi < pool.Len(); gi++ {
		s, l, err := pool.Locate(gi)
		if err != nil {
			t.Fatal(err)
		}
		if s != wantSrc[gi] || l != wantLocal[gi] {
			t.Fatalf("Locate(%d) = (%d, %d), want (%d, %d)", gi, s, l, wantSrc[gi], wantLocal[gi])
		}
		lq, err := pool.Example(gi)
		if err != nil {
			t.Fatal(err)
		}
		if lq.Card != wantCard[gi] {
			t.Fatalf("Example(%d).Card = %v, want %v", gi, lq.Card, wantCard[gi])
		}
	}
	if _, _, err := pool.Locate(5); err == nil {
		t.Fatal("Locate past end should fail")
	}
	if _, err := pool.Example(-1); err == nil {
		t.Fatal("Example(-1) should fail")
	}
}
