// Package workload generates JOB-like query workloads over a database
// and labels them with ground truth: the true cardinality and cost of
// every node of an initial plan (the paper's modified CardEst/CostEst
// targets), and the optimal join order for queries of up to 8 tables
// (the paper's ECQO-labeled JoinSel targets, with the same 8-table
// affordability limit).
//
// Generation is deterministic and shardable: GenerateSharded labels
// example i under a seed derived only from (seed, i/shardSize), so
// the same (seed, n, shardSize, config) produce the same labeled
// workload at any worker count — the property the corpus format and
// the bitwise training contracts (DESIGN.md §5) build on. Labeled
// examples flow to trainers through the Source interface (in-memory
// slices or a streaming corpus reader interchangeably).
//
// The same Generator also feeds the serving side: mtmlf-serve's
// /example endpoint and the load generator's query pool
// (internal/loadgen) draw unlabeled queries from it, so served
// traffic has the training workload's shape.
package workload

import (
	"fmt"
	"math/rand"

	"mtmlf/internal/catalog"
	"mtmlf/internal/cost"
	"mtmlf/internal/optimizer"
	"mtmlf/internal/plan"
	"mtmlf/internal/sqldb"
	"mtmlf/internal/stats"
)

// MaxOptimalTables is the largest query size labeled with an optimal
// join order (the paper can only afford ECQO for ≤ 8-table queries).
const MaxOptimalTables = 8

// Config controls query generation.
type Config struct {
	// MinTables and MaxTables bound the number of joined tables.
	MinTables, MaxTables int
	// MaxFilteredTables bounds how many tables receive filters.
	MaxFilteredTables int
	// FilterProb is the probability each eligible table (up to
	// MaxFilteredTables) receives filters; at least one table always
	// does. JOB queries filter most of their tables, which is what
	// makes multi-way join estimates compound errors.
	FilterProb float64
	// MaxFiltersPerTable bounds filters on one table.
	MaxFiltersPerTable int
	// LikeProb is the probability a string column filter uses LIKE.
	LikeProb float64
	// WithOptimal requests optimal join-order labels (queries above
	// MaxOptimalTables are still generated but left unlabeled).
	WithOptimal bool
	// MinResultRows rejects generated queries whose true result has
	// fewer rows (empty results make every estimator trivially exact
	// and every join order equally cheap). Default 1.
	MinResultRows int
}

// DefaultConfig mirrors the paper's JOB-like generation: joins of a
// handful of tables with correlated filters and LIKE predicates.
func DefaultConfig() Config {
	return Config{
		MinTables:          2,
		MaxTables:          6,
		MaxFilteredTables:  4,
		MaxFiltersPerTable: 2,
		FilterProb:         0.8,
		LikeProb:           0.6,
		WithOptimal:        true,
		MinResultRows:      1,
	}
}

// LabeledQuery is one training/evaluation example.
type LabeledQuery struct {
	Q *sqldb.Query
	// Plan is the initial physical plan P fed to MTMLF's featurization
	// module (built by the estimate-driven greedy optimizer, playing
	// the paper's "existing DBMS provides the initial plan" role).
	Plan *plan.Node
	// NodeCards and NodeCosts hold the TRUE cardinality and cumulative
	// cost of the sub-plan rooted at each node of Plan, in post-order
	// (aligned with Plan.Nodes()); cards are clamped to >= 1 for
	// q-error.
	NodeCards []float64
	NodeCosts []float64
	// Card and Cost are the root labels.
	Card, Cost float64
	// RawCard is the unclamped true root cardinality (0 for empty
	// results, where Card is clamped to 1).
	RawCard float64
	// OptimalOrder is the C_out-optimal left-deep join order, or nil
	// when the query exceeds MaxOptimalTables.
	OptimalOrder []string
}

// Generator produces labeled queries for one database.
type Generator struct {
	DB    *sqldb.DB
	Stats *stats.DBStats
	Cost  *cost.Model
	rng   *rand.Rand
}

// NewGenerator analyzes the database and prepares a generator.
func NewGenerator(db *sqldb.DB, seed int64) *Generator {
	return NewGeneratorFrom(catalog.NewMemory(db), seed)
}

// NewGeneratorFrom prepares a generator over any catalog backend,
// reusing the catalog's (computed-once) statistics instead of running
// a fresh ANALYZE pass.
func NewGeneratorFrom(cat catalog.Catalog, seed int64) *Generator {
	return &Generator{
		DB:    cat.DB(),
		Stats: cat.Stats(),
		Cost:  cost.Default(),
		rng:   newRNG(seed),
	}
}

// newRNG is the one seed-to-rng mapping every generator path uses.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// GenQuery builds one random connected join query with filters.
func (g *Generator) GenQuery(cfg Config) *sqldb.Query {
	for attempt := 0; attempt < 50; attempt++ {
		q := g.tryGenQuery(cfg)
		if q != nil {
			return q
		}
	}
	panic("workload: failed to generate a connected query; join graph too sparse")
}

func (g *Generator) tryGenQuery(cfg Config) *sqldb.Query {
	want := cfg.MinTables + g.rng.Intn(cfg.MaxTables-cfg.MinTables+1)
	// Random walk over the join graph collecting a spanning tree.
	start := g.DB.Tables[g.rng.Intn(len(g.DB.Tables))].Name
	chosen := []string{start}
	inSet := map[string]bool{start: true}
	var joins []sqldb.JoinEdge
	for len(chosen) < want {
		// Collect frontier edges.
		var frontier []sqldb.JoinEdge
		for _, e := range g.DB.Edges {
			if inSet[e.T1] != inSet[e.T2] {
				frontier = append(frontier, e)
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[g.rng.Intn(len(frontier))]
		next := e.T1
		if inSet[e.T1] {
			next = e.T2
		}
		chosen = append(chosen, next)
		inSet[next] = true
		joins = append(joins, e)
	}
	if len(chosen) < cfg.MinTables {
		return nil
	}
	q := &sqldb.Query{Tables: chosen, Joins: joins}
	g.addFilters(q, cfg)
	return q
}

// addFilters attaches random filters drawn from actual column values,
// so selectivities span a wide range (as in JOB).
func (g *Generator) addFilters(q *sqldb.Query, cfg Config) {
	prob := cfg.FilterProb
	if prob <= 0 {
		prob = 0.8
	}
	perm := g.rng.Perm(len(q.Tables))
	filtered := 0
	for i := 0; i < len(q.Tables) && filtered < cfg.MaxFilteredTables; i++ {
		// The first eligible table is always filtered; the rest with
		// probability prob, as JOB queries filter most tables.
		if filtered > 0 && g.rng.Float64() > prob {
			continue
		}
		table := q.Tables[perm[i]]
		tab := g.DB.Table(table)
		candidates := g.filterableColumns(q, tab)
		if len(candidates) == 0 {
			continue
		}
		// At most one filter per column: stacked predicates on the same
		// column are usually contradictory and empty the result.
		k := 1 + g.rng.Intn(cfg.MaxFiltersPerTable)
		if k > len(candidates) {
			k = len(candidates)
		}
		colPerm := g.rng.Perm(len(candidates))
		for j := 0; j < k; j++ {
			col := candidates[colPerm[j]]
			if f, ok := g.randomFilter(table, col, cfg); ok {
				q.Filters = append(q.Filters, f)
			}
		}
		filtered++
	}
}

// filterableColumns returns non-key columns of the table (keys get
// their semantics from joins, not filters).
func (g *Generator) filterableColumns(q *sqldb.Query, tab *sqldb.Table) []*sqldb.Column {
	keyCols := map[string]bool{"id": true}
	for _, e := range g.DB.Edges {
		if e.T1 == tab.Name {
			keyCols[e.C1] = true
		}
		if e.T2 == tab.Name {
			keyCols[e.C2] = true
		}
	}
	var out []*sqldb.Column
	for _, c := range tab.Columns {
		if !keyCols[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

func (g *Generator) randomFilter(table string, col *sqldb.Column, cfg Config) (sqldb.Filter, bool) {
	if col.Len() == 0 {
		return sqldb.Filter{}, false
	}
	sample := col.Value(g.rng.Intn(col.Len()))
	switch col.Kind {
	case sqldb.KindString:
		// Equality on a near-unique string column selects ~one row and
		// empties the join; prefer LIKE there (as JOB does).
		if g.rng.Float64() < cfg.LikeProb || col.DistinctCount() > 30 {
			return sqldb.Filter{Table: table, Col: col.Name, Op: sqldb.OpLike, Val: sqldb.StrVal(g.likePattern(sample.S))}, true
		}
		return sqldb.Filter{Table: table, Col: col.Name, Op: sqldb.OpEq, Val: sample}, true
	default:
		ops := []sqldb.Op{sqldb.OpEq, sqldb.OpLe, sqldb.OpGe, sqldb.OpLt, sqldb.OpGt}
		op := ops[g.rng.Intn(len(ops))]
		if op == sqldb.OpEq && col.DistinctCount() > 40 {
			// Equality on a wide numeric domain is near-empty; use a
			// range instead.
			op = sqldb.OpLe
		}
		return sqldb.Filter{Table: table, Col: col.Name, Op: op, Val: sample}, true
	}
}

// likePattern derives a LIKE pattern from a sampled value: a prefix,
// suffix, or infix pattern, as in JOB's "complex LIKE predicates".
func (g *Generator) likePattern(s string) string {
	if len(s) < 3 {
		return "%" + s + "%"
	}
	switch g.rng.Intn(3) {
	case 0: // prefix
		n := 2 + g.rng.Intn(len(s)-2)
		return s[:n] + "%"
	case 1: // suffix
		n := 2 + g.rng.Intn(len(s)-2)
		return "%" + s[len(s)-n:]
	default: // infix
		lo := g.rng.Intn(len(s) - 2)
		hi := lo + 2 + g.rng.Intn(len(s)-lo-2+1)
		if hi > len(s) {
			hi = len(s)
		}
		return "%" + s[lo:hi] + "%"
	}
}

// Label computes all ground-truth labels for a query.
func (g *Generator) Label(q *sqldb.Query, withOptimal bool) (*LabeledQuery, error) {
	ex := sqldb.NewExecutor(g.DB, q)
	est := optimizer.EstimatedCards{S: g.Stats, Q: q}

	// Initial plan from the estimate-driven greedy optimizer with
	// physical operators chosen by the cost model.
	greedy, err := optimizer.GreedyLeftDeep(q, est)
	if err != nil {
		return nil, fmt.Errorf("workload: initial plan: %w", err)
	}
	physical := optimizer.PhysicalPlan(q, g.DB, greedy.Tree, est, g.Cost)

	// True per-node labels.
	trueCard := func(tables []string) float64 {
		c := float64(ex.CardOf(tables))
		if c < 1 {
			c = 1
		}
		return c
	}
	rows := func(name string) float64 { return float64(g.DB.Table(name).NumRows()) }
	total, nodeCards, nodeCosts := g.Cost.PlanCost(physical, rows, trueCard)

	lq := &LabeledQuery{
		Q:         q,
		Plan:      physical,
		NodeCards: nodeCards,
		NodeCosts: nodeCosts,
		Card:      nodeCards[len(nodeCards)-1],
		Cost:      total,
		RawCard:   float64(ex.Cardinality()),
	}
	if withOptimal && len(q.Tables) <= MaxOptimalTables {
		opt, err := optimizer.BestLeftDeep(q, optimizer.TrueCards{Ex: ex})
		if err != nil {
			return nil, fmt.Errorf("workload: optimal order: %w", err)
		}
		lq.OptimalOrder = opt.Order
	}
	return lq, nil
}

// Generate produces n labeled queries with non-degenerate results.
func (g *Generator) Generate(n int, cfg Config) []*LabeledQuery {
	minRows := cfg.MinResultRows
	if minRows <= 0 {
		minRows = 1
	}
	out := make([]*LabeledQuery, 0, n)
	misses := 0
	for len(out) < n {
		q := g.GenQuery(cfg)
		lq, err := g.Label(q, cfg.WithOptimal)
		if err != nil {
			continue // sparse corner (e.g. stuck greedy); resample
		}
		if lq.RawCard < float64(minRows) {
			// Empty/near-empty result: resample, but relax after many
			// consecutive misses so pathological schemas still make
			// progress.
			misses++
			if misses < 200 {
				continue
			}
		}
		misses = 0
		out = append(out, lq)
	}
	return out
}

// Split partitions queries into train/validation/test by fractions
// (e.g. 0.9/0.05/0.05 or the paper's 85/10/5 JoinSel split).
func Split(qs []*LabeledQuery, trainFrac, valFrac float64) (train, val, test []*LabeledQuery) {
	nTrain := int(float64(len(qs)) * trainFrac)
	nVal := int(float64(len(qs)) * valFrac)
	train = qs[:nTrain]
	val = qs[nTrain : nTrain+nVal]
	test = qs[nTrain+nVal:]
	return train, val, test
}

// SingleTableQuery is a filter-only query on one table with its true
// selectivity — the training data for the paper's per-table encoders
// Enc_i (F.ii), which "learn the data distribution of T_i through
// predicting the cardinality of filter predicate f(T_i)".
type SingleTableQuery struct {
	Table   string
	Filters []sqldb.Filter
	// Card is the true filtered cardinality (clamped to >= 1).
	Card float64
	// Frac is Card divided by the table's row count.
	Frac float64
}

// TableWorkload pairs one table with its labeled single-table
// workload — the unit of the encoder pre-training data set, and the
// record the corpus v2 single-table section stores so training runs
// can skip regenerating it.
type TableWorkload struct {
	Table   string
	Queries []SingleTableQuery
}

// GenPretrainSet generates the per-table encoder pre-training
// workloads for every table of the generator's database, in table
// order — exactly the sequence of GenSingleTable draws
// featurize.PretrainAll historically made from one rng stream, so
// pre-training from this set (featurize.PretrainAllFrom) is bitwise
// identical to pre-training live from the same generator, and the rng
// ends in the same state (the queries generated afterwards match
// too).
func (g *Generator) GenPretrainSet(perTable int, cfg Config) []TableWorkload {
	out := make([]TableWorkload, 0, len(g.DB.Tables))
	for _, t := range g.DB.Tables {
		out = append(out, TableWorkload{Table: t.Name, Queries: g.GenSingleTable(t.Name, perTable, cfg)})
	}
	return out
}

// GenSingleTable produces n labeled single-table queries for table.
func (g *Generator) GenSingleTable(table string, n int, cfg Config) []SingleTableQuery {
	tab := g.DB.Table(table)
	if tab == nil {
		panic(fmt.Sprintf("workload: unknown table %q", table))
	}
	cols := g.filterableColumns(&sqldb.Query{Tables: []string{table}}, tab)
	out := make([]SingleTableQuery, 0, n)
	for len(out) < n {
		var filters []sqldb.Filter
		if len(cols) > 0 {
			k := 1 + g.rng.Intn(cfg.MaxFiltersPerTable)
			for j := 0; j < k; j++ {
				col := cols[g.rng.Intn(len(cols))]
				if f, ok := g.randomFilter(table, col, cfg); ok {
					filters = append(filters, f)
				}
			}
		}
		card := float64(sqldb.FilteredCard(tab, filters))
		if card < 1 {
			card = 1
		}
		out = append(out, SingleTableQuery{
			Table:   table,
			Filters: filters,
			Card:    card,
			Frac:    card / float64(tab.NumRows()),
		})
	}
	return out
}
