package workload

import (
	"math"
	"testing"

	"mtmlf/internal/datagen"
	"mtmlf/internal/optimizer"
	"mtmlf/internal/sqldb"
)

func testDB() *sqldb.DB { return datagen.SyntheticIMDB(11, 0.08) }

func TestGenQueryConnectedAndBounded(t *testing.T) {
	g := NewGenerator(testDB(), 1)
	cfg := DefaultConfig()
	for i := 0; i < 30; i++ {
		q := g.GenQuery(cfg)
		if len(q.Tables) < cfg.MinTables || len(q.Tables) > cfg.MaxTables {
			t.Fatalf("query has %d tables", len(q.Tables))
		}
		if !q.IsConnected() {
			t.Fatalf("disconnected query: %v", q.Tables)
		}
		// Spanning-tree joins: exactly |T|-1 edges.
		if len(q.Joins) != len(q.Tables)-1 {
			t.Fatalf("expected %d joins, got %d", len(q.Tables)-1, len(q.Joins))
		}
	}
}

func TestGenQueryFiltersReferenceQueryTables(t *testing.T) {
	g := NewGenerator(testDB(), 2)
	cfg := DefaultConfig()
	for i := 0; i < 20; i++ {
		q := g.GenQuery(cfg)
		for _, f := range q.Filters {
			if !q.HasTable(f.Table) {
				t.Fatalf("filter %v on non-query table", f)
			}
			if f.Col == "id" {
				t.Fatal("filters must not target key columns")
			}
		}
	}
}

func TestLabelProducesConsistentGroundTruth(t *testing.T) {
	db := testDB()
	g := NewGenerator(db, 3)
	cfg := DefaultConfig()
	cfg.MaxTables = 4
	for i := 0; i < 10; i++ {
		q := g.GenQuery(cfg)
		lq, err := g.Label(q, true)
		if err != nil {
			t.Fatal(err)
		}
		nodes := lq.Plan.Nodes()
		if len(lq.NodeCards) != len(nodes) || len(lq.NodeCosts) != len(nodes) {
			t.Fatal("per-node label lengths wrong")
		}
		// Root labels match the scalar fields.
		if lq.NodeCards[len(nodes)-1] != lq.Card || lq.NodeCosts[len(nodes)-1] != lq.Cost {
			t.Fatal("root labels inconsistent")
		}
		// Cards clamped to >= 1 (q-error needs positive values).
		for _, c := range lq.NodeCards {
			if c < 1 {
				t.Fatalf("node card %g below 1", c)
			}
		}
		// The plan covers exactly the query's tables.
		if len(lq.Plan.Tables()) != len(q.Tables) {
			t.Fatal("plan table count mismatch")
		}
		// The root card equals the true executed cardinality (clamped).
		ex := sqldb.NewExecutor(db, q)
		want := float64(ex.Cardinality())
		if want < 1 {
			want = 1
		}
		if lq.Card != want {
			t.Fatalf("root card %g != executed %g", lq.Card, want)
		}
	}
}

func TestLabelOptimalOrderIsOptimal(t *testing.T) {
	db := testDB()
	g := NewGenerator(db, 4)
	cfg := DefaultConfig()
	cfg.MinTables, cfg.MaxTables = 3, 5
	for i := 0; i < 5; i++ {
		q := g.GenQuery(cfg)
		lq, err := g.Label(q, true)
		if err != nil {
			t.Fatal(err)
		}
		if lq.OptimalOrder == nil {
			t.Fatal("small query must get an optimal order")
		}
		ex := sqldb.NewExecutor(db, q)
		cards := optimizer.TrueCards{Ex: ex}
		got := optimizer.OrderCost(lq.OptimalOrder, cards)
		best, err := optimizer.BestLeftDeep(q, cards)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-best.Cost) > 1e-9 {
			t.Fatalf("labeled order cost %g != optimal %g", got, best.Cost)
		}
	}
}

func TestGenerateAndSplit(t *testing.T) {
	g := NewGenerator(testDB(), 5)
	cfg := DefaultConfig()
	cfg.MaxTables = 4
	qs := g.Generate(20, cfg)
	if len(qs) != 20 {
		t.Fatalf("generated %d queries", len(qs))
	}
	train, val, test := Split(qs, 0.8, 0.1)
	if len(train) != 16 || len(val) != 2 || len(test) != 2 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
}

func TestGenSingleTable(t *testing.T) {
	db := testDB()
	g := NewGenerator(db, 6)
	cfg := DefaultConfig()
	qs := g.GenSingleTable("title", 20, cfg)
	if len(qs) != 20 {
		t.Fatal("single-table count wrong")
	}
	rows := float64(db.Table("title").NumRows())
	for _, q := range qs {
		if q.Card < 1 || q.Card > rows {
			t.Fatalf("single-table card %g out of range", q.Card)
		}
		if math.Abs(q.Frac-q.Card/rows) > 1e-12 {
			t.Fatal("Frac inconsistent with Card")
		}
		// Verify the label against direct filtering.
		want := float64(sqldb.FilteredCard(db.Table("title"), q.Filters))
		if want < 1 {
			want = 1
		}
		if q.Card != want {
			t.Fatalf("single-table card %g != truth %g", q.Card, want)
		}
	}
}

func TestLikePatternsMatchSource(t *testing.T) {
	g := NewGenerator(testDB(), 7)
	// Patterns derived from a value must match that value.
	for i := 0; i < 200; i++ {
		s := "hello_world_42"
		p := g.likePattern(s)
		if !sqldb.MatchLike(s, p) {
			t.Fatalf("pattern %q does not match its source %q", p, s)
		}
	}
}

func TestLargeQueriesSkipOptimalLabel(t *testing.T) {
	g := NewGenerator(testDB(), 8)
	cfg := DefaultConfig()
	cfg.MinTables, cfg.MaxTables = MaxOptimalTables+1, MaxOptimalTables+3
	var found bool
	for i := 0; i < 10 && !found; i++ {
		q := g.GenQuery(cfg)
		if len(q.Tables) <= MaxOptimalTables {
			continue
		}
		lq, err := g.Label(q, true)
		if err != nil {
			continue
		}
		if lq.OptimalOrder != nil {
			t.Fatal("oversized query must not get optimal label")
		}
		found = true
	}
	if !found {
		t.Skip("could not generate an oversized query on this schema")
	}
}
