#!/usr/bin/env bash
# corpus-smoke: end-to-end check of the pluggable data plane. Builds a
# tiny labeled corpus with mtmlf-datagen -out, retrains from it twice
# — streaming examples from disk and fully materialized in memory,
# plus a 4-worker streaming run — and asserts all three loss
# trajectories are BYTE-IDENTICAL (the trajectories are written as hex
# float64s, so cmp is a bitwise assertion). Run via `make
# corpus-smoke`; CI runs it on every push and uploads the corpus
# artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# The corpus is left at $CORPUS_OUT for CI to upload.
OUT=${CORPUS_OUT:-corpus-smoke.mtc}
SEED=5

echo "== building binaries"
go build -o "$TMP/mtmlf-datagen" ./cmd/mtmlf-datagen
go build -o "$TMP/mtmlf-train" ./cmd/mtmlf-train

echo "== generating a tiny labeled corpus"
"$TMP/mtmlf-datagen" -n 2 -seed "$SEED" -minrows 60 -maxrows 120 \
    -queries 16 -maxtables 4 -out "$OUT" | tail -3

echo "== training from the corpus (streaming from disk)"
"$TMP/mtmlf-train" -corpus "$OUT" -epochs 2 -seed 7 \
    -loss-out "$TMP/stream.loss" | tail -2
echo "== training from the corpus (materialized in memory)"
"$TMP/mtmlf-train" -corpus "$OUT" -corpus-mode inmem -epochs 2 -seed 7 \
    -loss-out "$TMP/inmem.loss" | tail -2
echo "== training from the corpus (streaming, 4 workers)"
"$TMP/mtmlf-train" -corpus "$OUT" -epochs 2 -seed 7 -workers 4 \
    -loss-out "$TMP/w4.loss" | tail -2

echo "== comparing loss trajectories (bitwise)"
cmp "$TMP/stream.loss" "$TMP/inmem.loss" || {
    echo "FAIL: streaming trajectory differs from in-memory"; exit 1; }
cmp "$TMP/stream.loss" "$TMP/w4.loss" || {
    echo "FAIL: 4-worker trajectory differs from 1-worker"; exit 1; }
STEPS=$(wc -l < "$TMP/stream.loss")
echo "corpus-smoke: trajectories bitwise identical over $STEPS steps (stream == inmem == 4 workers)"
