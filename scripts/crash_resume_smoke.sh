#!/usr/bin/env bash
# resume-smoke: the kill -9 drill behind the durable-training
# contract. Builds a tiny corpus, trains an uninterrupted reference
# model, then — at workers 1 and 4 — repeatedly SIGKILLs a real
# `mtmlf-train -resume -snapshot-every 1` run at a random moment and
# reruns it with the same flags until it exits 0. The final checkpoint
# and hex-float loss trajectory must be BYTE-IDENTICAL to the
# reference (gob encodes exact float64 bit patterns, so cmp is a
# bitwise assertion): crashing and resuming, any number of times, at
# any worker count, must not change the trained model by a single bit.
# Run via `make resume-smoke`; CI runs it on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SEED=7
KILLS=${RESUME_SMOKE_KILLS:-2}
CORPUS="$TMP/fleet.mtc"
TRAIN_ARGS=(-corpus "$CORPUS" -epochs 6 -batch 4 -seed "$SEED")

echo "== building binaries"
go build -o "$TMP/mtmlf-datagen" ./cmd/mtmlf-datagen
go build -o "$TMP/mtmlf-train" ./cmd/mtmlf-train

echo "== generating a tiny corpus"
"$TMP/mtmlf-datagen" -n 1 -seed "$SEED" -minrows 60 -maxrows 120 \
    -queries 40 -maxtables 4 -out "$CORPUS" | tail -1

echo "== uninterrupted reference run"
"$TMP/mtmlf-train" "${TRAIN_ARGS[@]}" -workers 1 \
    -save "$TMP/ref.ckpt" -loss-out "$TMP/ref.loss" | tail -2

# drill WORKERS: SIGKILL $KILLS training attempts at random moments,
# then rerun with the same flags until the run exits 0.
drill() {
    local workers=$1 snap="$TMP/w$1.snap" ckpt="$TMP/w$1.ckpt" loss="$TMP/w$1.loss"
    local args=("${TRAIN_ARGS[@]}" -workers "$workers" -resume "$snap" \
        -snapshot-every 1 -save "$ckpt" -loss-out "$loss")
    for k in $(seq 1 "$KILLS"); do
        "$TMP/mtmlf-train" "${args[@]}" >/dev/null 2>&1 &
        local pid=$!
        # Let the attempt reach at least one snapshot, then strike at a
        # random instant. A kill that loses the race to completion is
        # fine: the supervisor rerun below converges either way.
        for _ in $(seq 1 200); do
            [ -s "$snap" ] && break
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.05
        done
        sleep "0.$((RANDOM % 4))"
        if kill -9 "$pid" 2>/dev/null; then
            echo "   workers=$workers: killed attempt $k (pid $pid)"
        else
            echo "   workers=$workers: attempt $k finished before the kill"
        fi
        wait "$pid" 2>/dev/null || true
    done
    # The supervisor loop: rerun with identical flags until exit 0.
    local tries=0
    until "$TMP/mtmlf-train" "${args[@]}" >"$TMP/w$workers.out" 2>&1; do
        tries=$((tries + 1))
        [ "$tries" -lt 10 ] || { echo "FAIL: no clean exit after $tries resumes"; exit 1; }
    done
    tail -2 "$TMP/w$workers.out"
}

for W in 1 4; do
    echo "== kill -9 drill (workers=$W, $KILLS kills)"
    drill "$W"
    echo "== comparing final checkpoint and trajectory against the reference (bitwise)"
    cmp "$TMP/w$W.ckpt" "$TMP/ref.ckpt" || {
        echo "FAIL: workers=$W resumed checkpoint differs from uninterrupted reference"; exit 1; }
    cmp "$TMP/w$W.loss" "$TMP/ref.loss" || {
        echo "FAIL: workers=$W resumed loss trajectory differs from uninterrupted reference"; exit 1; }
done
STEPS=$(wc -l < "$TMP/ref.loss")
echo "resume-smoke: kill -9 x$KILLS at workers 1 and 4 — final checkpoint and $STEPS-step trajectory bitwise identical to the uninterrupted run"
