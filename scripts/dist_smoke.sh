#!/usr/bin/env bash
# dist-smoke: the end-to-end drill behind the distributed-training
# contract. Builds a tiny fleet corpus, trains an uninterrupted
# single-process `-mla` reference, then runs the same job as a real
# fleet — one `-dist-coordinator` process plus two `-dist-worker`
# ranks snapshotting every step — SIGKILLs a random worker mid-epoch
# (the whole fleet fail-stops), and reruns the entire fleet under a
# supervisor loop with `-resume` until it exits clean. The checkpoint
# and hex-float loss trajectory from rank 0 must be BYTE-IDENTICAL to
# the single-process reference: distributing the run across processes,
# killing it, and resuming it must not change the trained model by a
# single bit. Run via `make dist-smoke`; CI runs it on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
cleanup() {
    local pids
    pids=$(jobs -p)
    [ -n "$pids" ] && kill $pids 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT

SEED=11
WORLD=2
CORPUS="$TMP/fleet.mtc"
SNAP="$TMP/dist.snap"
TRAIN_ARGS=(-mla -corpus "$CORPUS" -epochs 2 -encoder-epochs 1 -st-per-table 5 -batch 4)

echo "== building binaries"
go build -o "$TMP/mtmlf-datagen" ./cmd/mtmlf-datagen
go build -o "$TMP/mtmlf-train" ./cmd/mtmlf-train

echo "== generating a tiny 3-DB fleet corpus"
"$TMP/mtmlf-datagen" -n 3 -seed "$SEED" -minrows 60 -maxrows 120 \
    -queries 10 -maxtables 4 -single-table 5 -out "$CORPUS" | tail -1

echo "== uninterrupted single-process reference run"
"$TMP/mtmlf-train" "${TRAIN_ARGS[@]}" \
    -save "$TMP/ref.ckpt" -loss-out "$TMP/ref.loss" | tail -2

# launch_fleet: start a coordinator on a random loopback port plus
# $WORLD workers (every rank with identical training flags and
# -resume; rank 0 owns the artifacts). Sets CPID and WPIDS.
launch_fleet() {
    : >"$TMP/coord.out"
    "$TMP/mtmlf-train" -dist-coordinator 127.0.0.1:0 -dist-world "$WORLD" \
        >"$TMP/coord.out" 2>&1 &
    CPID=$!
    local addr="" i
    for i in $(seq 1 100); do
        addr=$(sed -n 's/^coordinator listening on \([^ ]*\).*/\1/p' "$TMP/coord.out" | head -1)
        [ -n "$addr" ] && break
        kill -0 "$CPID" 2>/dev/null || { echo "FAIL: coordinator died at launch"; cat "$TMP/coord.out"; exit 1; }
        sleep 0.05
    done
    [ -n "$addr" ] || { echo "FAIL: coordinator never printed its address"; exit 1; }
    WPIDS=()
    local rank
    for rank in $(seq 0 $((WORLD - 1))); do
        "$TMP/mtmlf-train" "${TRAIN_ARGS[@]}" \
            -dist-worker "$addr" -dist-rank "$rank" -dist-world "$WORLD" \
            -resume "$SNAP" -snapshot-every 1 \
            -save "$TMP/dist.ckpt" -loss-out "$TMP/dist.loss" \
            >"$TMP/rank$rank.out" 2>&1 &
        WPIDS+=($!)
    done
}

# reap_fleet: wait for every fleet process; return 0 iff all exited 0.
reap_fleet() {
    local ok=0 pid
    for pid in "$CPID" "${WPIDS[@]}"; do
        wait "$pid" || ok=1
    done
    return "$ok"
}

echo "== fleet drill: coordinator + $WORLD workers, SIGKILL one mid-epoch"
launch_fleet
# Let the fleet reach at least one snapshot, then strike a random
# worker at a random instant. The whole fleet fail-stops: the
# coordinator aborts, every surviving rank exits non-zero.
for _ in $(seq 1 200); do
    [ -s "$SNAP" ] && break
    kill -0 "${WPIDS[0]}" 2>/dev/null || break
    sleep 0.05
done
sleep "0.$((RANDOM % 4))"
VICTIM=${WPIDS[$((RANDOM % WORLD))]}
if kill -9 "$VICTIM" 2>/dev/null; then
    echo "   killed worker pid $VICTIM"
else
    echo "   fleet finished before the kill"
fi
reap_fleet || true

# The supervisor: relaunch the whole fleet with identical flags until
# every process exits 0. Rank 0's snapshot re-synchronizes the ranks
# at startup, so the rerun continues the interrupted trajectory.
echo "== supervisor: relaunching the fleet with -resume until clean"
tries=0
while :; do
    launch_fleet
    reap_fleet && break
    tries=$((tries + 1))
    [ "$tries" -lt 10 ] || {
        echo "FAIL: fleet did not exit clean after $tries resumes"
        tail -5 "$TMP"/coord.out "$TMP"/rank*.out
        exit 1
    }
done
tail -2 "$TMP/rank0.out"

echo "== comparing rank 0 checkpoint and trajectory against the single-process reference (bitwise)"
cmp "$TMP/dist.ckpt" "$TMP/ref.ckpt" || {
    echo "FAIL: distributed checkpoint differs from single-process reference"; exit 1; }
cmp "$TMP/dist.loss" "$TMP/ref.loss" || {
    echo "FAIL: distributed loss trajectory differs from single-process reference"; exit 1; }
STEPS=$(wc -l < "$TMP/ref.loss")
echo "dist-smoke: $WORLD-rank fleet survived kill -9 + resume — checkpoint and $STEPS-step trajectory bitwise identical to the single-process run"
