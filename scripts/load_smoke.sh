#!/usr/bin/env bash
# load-smoke: end-to-end check of the production load path. Trains a
# tiny checkpoint, boots mtmlf-serve with a bounded admission queue,
# drives it with mtmlf-loadgen at two closed-loop concurrency levels
# (with a hot checkpoint reload mid-way through the first), and
# asserts: nonzero successes on every endpoint at every level, zero
# failed requests (shed 429s and deadline 504s are allowed — they are
# correct overload behavior), a successful mid-run reload, and a
# well-formed BENCH_PR6.json. Run via `make load-smoke`; CI runs it on
# every push and uploads the report.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

SEED=7
SCALE=0.04
REPORT=BENCH_PR6.json

echo "== building binaries"
go build -o "$TMP/mtmlf-train" ./cmd/mtmlf-train
go build -o "$TMP/mtmlf-serve" ./cmd/mtmlf-serve
go build -o "$TMP/mtmlf-loadgen" ./cmd/mtmlf-loadgen

echo "== training a tiny checkpoint"
"$TMP/mtmlf-train" -queries 24 -epochs 1 -seed "$SEED" -scale "$SCALE" \
    -save "$TMP/model.ckpt" | tail -3

echo "== starting mtmlf-serve on a random port"
"$TMP/mtmlf-serve" -checkpoint "$TMP/model.ckpt" -seed "$SEED" -scale "$SCALE" \
    -addr 127.0.0.1:0 -max-queue 64 >"$TMP/serve.log" 2>&1 &
SERVER_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/.*serving on \(http:\/\/[0-9.:]*\).*/\1/p' "$TMP/serve.log" | head -1)
    [ -n "$BASE" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "server never reported its address:"; cat "$TMP/serve.log"; exit 1; }
echo "   serving at $BASE"

echo "== load: two closed-loop levels, hot reload mid-run"
# The loadgen is its own assertion: it exits non-zero if any endpoint
# has < -min-ok successes at any level, if any request fails outright
# (-max-errors 0), or if the mid-run reload does not return 200.
"$TMP/mtmlf-loadgen" -target "$BASE" -duration 2s -levels 4,8 \
    -seed "$SEED" -scale "$SCALE" -pool 64 -zipf 1.2 \
    -reload-after 1s -min-ok 1 -max-errors 0 -json "$REPORT"

echo "== validating $REPORT"
jq -e '.load | length == 6' "$REPORT" >/dev/null \
    || { echo "FAIL: want 6 load entries (3 endpoints x 2 levels)"; jq .load "$REPORT"; exit 1; }
jq -e '[.load[] | select(.ok > 0 and .throughput_rps > 0 and .p50_ms > 0
        and .p50_ms <= .p95_ms and .p95_ms <= .p99_ms)] | length == 6' "$REPORT" >/dev/null \
    || { echo "FAIL: a load entry is missing data:"; jq .load "$REPORT"; exit 1; }
jq -e '[.load[].errors] | add == 0' "$REPORT" >/dev/null \
    || { echo "FAIL: failed requests recorded:"; jq .load "$REPORT"; exit 1; }
jq -e '[.load[] | .name] | sort == ["card/c4","card/c8","cost/c4","cost/c8","joinorder/c4","joinorder/c8"]' \
    "$REPORT" >/dev/null \
    || { echo "FAIL: unexpected entry names:"; jq '[.load[].name]' "$REPORT"; exit 1; }

# The server survived the whole drill, counted the reload, and its
# queue drained.
curl -fsS "$BASE/healthz" | jq -e '.status == "ok" and .reloads == 1' >/dev/null \
    || { echo "FAIL: server unhealthy or reload not counted:"; curl -fsS "$BASE/healthz"; exit 1; }

echo "load-smoke: $(jq -r '[.load[].requests] | add' "$REPORT") requests, 0 failures, reload OK"
