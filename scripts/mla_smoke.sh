#!/usr/bin/env bash
# mla-smoke: end-to-end check of corpus-backed fleet pretraining
# (Algorithm 1 from one artifact). Builds a tiny 3-database fleet
# corpus with v2 single-table sections (mtmlf-datagen -single-table),
# runs `mtmlf-train -mla -corpus` twice — streaming the pooled
# examples from disk and materializing them in memory — and asserts
# the loss trajectories AND the saved shared-only checkpoints are
# BYTE-IDENTICAL (trajectories are hex float64s and checkpoints are
# gob-encoded exact bit patterns, so cmp is a bitwise assertion).
# Run via `make mla-smoke`; CI runs it on every push and uploads the
# fleet corpus artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# The corpus is left at $MLA_CORPUS_OUT for CI to upload.
OUT=${MLA_CORPUS_OUT:-mla-smoke.mtc}
SEED=11

echo "== building binaries"
go build -o "$TMP/mtmlf-datagen" ./cmd/mtmlf-datagen
go build -o "$TMP/mtmlf-train" ./cmd/mtmlf-train

echo "== generating a tiny 3-DB fleet corpus with single-table sections"
"$TMP/mtmlf-datagen" -n 3 -seed "$SEED" -minrows 60 -maxrows 120 \
    -queries 10 -maxtables 4 -single-table 5 -out "$OUT" | tail -4

echo "== fleet pretraining (pooled examples streamed from disk)"
"$TMP/mtmlf-train" -mla -corpus "$OUT" -epochs 2 -encoder-epochs 1 \
    -st-per-table 5 -loss-out "$TMP/stream.loss" -save "$TMP/stream.ckpt" | tail -2
echo "== fleet pretraining (pooled examples materialized in memory)"
"$TMP/mtmlf-train" -mla -corpus "$OUT" -corpus-mode inmem -epochs 2 -encoder-epochs 1 \
    -st-per-table 5 -loss-out "$TMP/inmem.loss" -save "$TMP/inmem.ckpt" | tail -2

echo "== comparing loss trajectories and checkpoints (bitwise)"
cmp "$TMP/stream.loss" "$TMP/inmem.loss" || {
    echo "FAIL: streaming MLA trajectory differs from in-memory"; exit 1; }
cmp "$TMP/stream.ckpt" "$TMP/inmem.ckpt" || {
    echo "FAIL: streaming MLA checkpoint differs from in-memory"; exit 1; }
STEPS=$(wc -l < "$TMP/stream.loss")
echo "mla-smoke: trajectory ($STEPS steps) and shared checkpoint bitwise identical (stream == inmem)"
