#!/usr/bin/env bash
# serve-smoke: end-to-end check of the train → checkpoint → serve
# pipeline. Trains a tiny model, saves a full-model checkpoint, boots
# mtmlf-serve on a random port, and curls every endpoint — including
# the /example → POST round trip, which exercises the JSON codec both
# ways. Run via `make serve-smoke`; CI runs it on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

SEED=7
SCALE=0.04

echo "== building binaries"
go build -o "$TMP/mtmlf-train" ./cmd/mtmlf-train
go build -o "$TMP/mtmlf-serve" ./cmd/mtmlf-serve

echo "== training a tiny checkpoint"
"$TMP/mtmlf-train" -queries 24 -epochs 1 -seed "$SEED" -scale "$SCALE" \
    -save "$TMP/model.ckpt" | tail -3

echo "== starting mtmlf-serve on a random port"
"$TMP/mtmlf-serve" -checkpoint "$TMP/model.ckpt" -seed "$SEED" -scale "$SCALE" \
    -addr 127.0.0.1:0 >"$TMP/serve.log" 2>&1 &
SERVER_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/.*serving on \(http:\/\/[0-9.:]*\).*/\1/p' "$TMP/serve.log" | head -1)
    [ -n "$BASE" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "server never reported its address:"; cat "$TMP/serve.log"; exit 1; }
echo "   serving at $BASE"

check() { # check <name> <expected-substring> <<< response
    local name=$1 want=$2 body
    body=$(cat)
    if ! grep -q "$want" <<<"$body"; then
        echo "FAIL $name: response lacks '$want': $body"
        exit 1
    fi
    echo "   ok $name"
}

curl -fsS "$BASE/healthz" | check healthz '"status":"ok"'
curl -fsS "$BASE/example" >"$TMP/req.json"
check example '"tables"' <"$TMP/req.json"
curl -fsS -d @"$TMP/req.json" "$BASE/estimate/card" | check estimate/card '"root"'
curl -fsS -d @"$TMP/req.json" "$BASE/estimate/cost" | check estimate/cost '"root"'
curl -fsS -d @"$TMP/req.json" "$BASE/joinorder"     | check joinorder '"order"'
curl -fsS "$BASE/statsz" | check statsz '"qps"'
# Typed-error path: an unknown table must 400 with a JSON error, not
# crash the server.
code=$(curl -s -o "$TMP/err.json" -w '%{http_code}' \
    -d '{"query":{"tables":["no_such_table"]}}' "$BASE/estimate/card")
[ "$code" = 400 ] || { echo "FAIL error path: status $code"; exit 1; }
check error-path '"error"' <"$TMP/err.json"
# And the server is still healthy afterwards.
curl -fsS "$BASE/healthz" | check healthz-after-error '"status":"ok"'

echo "serve-smoke: all endpoints OK"
